package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xmlviews/internal/nodeid"
	"xmlviews/internal/nrel"
	"xmlviews/internal/xmltree"
)

// randomRelation builds a relation with mixed-kind columns covering every
// value kind, empty strings, duplicate IDs and null values.
func randomRelation(rng *rand.Rand, nrows int, depth int) *nrel.Relation {
	cols := []string{"s0.id", "s0.l", "s0.v", "s0.c", "t"}
	r := nrel.NewRelation(cols...)
	var prevID nodeid.ID
	for i := 0; i < nrows; i++ {
		row := make(nrel.Tuple, len(cols))
		// ID column: sometimes null, sometimes a duplicate of the previous.
		switch rng.Intn(4) {
		case 0:
			row[0] = nrel.Null()
		case 1:
			if prevID != nil {
				row[0] = nrel.ID(prevID)
				break
			}
			fallthrough
		default:
			id := nodeid.Root()
			for d := rng.Intn(5); d > 0; d-- {
				id = id.Child(uint32(1 + rng.Intn(9)))
			}
			prevID = id
			row[0] = nrel.ID(id)
		}
		// Label column: small vocabulary so the dictionary gets reuse.
		row[1] = nrel.String([]string{"item", "name", "bid", ""}[rng.Intn(4)])
		// Value column: null or a random (possibly empty) string.
		if rng.Intn(3) == 0 {
			row[2] = nrel.Null()
		} else {
			row[2] = nrel.String(strings.Repeat("x", rng.Intn(4)))
		}
		// Content column: null, nil document, or a random subtree.
		switch rng.Intn(3) {
		case 0:
			row[3] = nrel.Null()
		case 1:
			row[3] = nrel.Value{Kind: nrel.KindContent}
		default:
			row[3] = nrel.Content(randomDoc(rng))
		}
		// Table column: null or a nested relation (bounded recursion).
		if depth <= 0 || rng.Intn(2) == 0 {
			row[4] = nrel.Null()
		} else {
			row[4] = nrel.Table(randomRelation(rng, rng.Intn(4), depth-1))
		}
		r.Append(row)
	}
	return r
}

func randomDoc(rng *rand.Rand) *xmltree.Document {
	d := xmltree.NewDocument("root")
	d.Root.Value = "v"
	var grow func(n *xmltree.Node, depth int)
	grow = func(n *xmltree.Node, depth int) {
		if depth <= 0 {
			return
		}
		for i := rng.Intn(3); i > 0; i-- {
			c := n.AddChild([]string{"a", "b", "c"}[rng.Intn(3)], strings.Repeat("y", rng.Intn(3)))
			c.PathID = rng.Intn(10) - 1
			grow(c, depth-1)
		}
	}
	grow(d.Root, 3)
	return d
}

// assertRoundTrip checks decode(encode(r)) reproduces the relation: the
// re-encoded bytes are byte-identical and values compare Equal.
func assertRoundTrip(t *testing.T, r *nrel.Relation) {
	t.Helper()
	data := EncodeRelation(r)
	got, err := DecodeRelation(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got.Cols) != len(r.Cols) {
		t.Fatalf("cols: got %v want %v", got.Cols, r.Cols)
	}
	for i, c := range r.Cols {
		if got.Cols[i] != c {
			t.Fatalf("col %d: got %q want %q", i, got.Cols[i], c)
		}
	}
	if got.Len() != r.Len() {
		t.Fatalf("rows: got %d want %d", got.Len(), r.Len())
	}
	for i, row := range r.Rows {
		for j, v := range row {
			if !got.Rows[i][j].Equal(v) {
				t.Fatalf("row %d col %d: got %s want %s", i, j, got.Rows[i][j].Render(), v.Render())
			}
			if got.Rows[i][j].Render() != v.Render() {
				t.Fatalf("row %d col %d render: got %q want %q", i, j, got.Rows[i][j].Render(), v.Render())
			}
		}
	}
	again := EncodeRelation(got)
	if string(again) != string(data) {
		t.Fatalf("re-encoding is not byte-identical (%d vs %d bytes)", len(again), len(data))
	}
}

func TestCodecRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		assertRoundTrip(t, randomRelation(rng, rng.Intn(20), 2))
	}
}

func TestCodecRoundTripEdgeCases(t *testing.T) {
	t.Run("empty relation", func(t *testing.T) {
		assertRoundTrip(t, nrel.NewRelation())
	})
	t.Run("columns no rows", func(t *testing.T) {
		assertRoundTrip(t, nrel.NewRelation("s0.id", "s0.v"))
	})
	t.Run("empty string values", func(t *testing.T) {
		r := nrel.NewRelation("v")
		r.Append(nrel.Tuple{nrel.String("")})
		r.Append(nrel.Tuple{nrel.String("")})
		assertRoundTrip(t, r)
	})
	t.Run("duplicate and null IDs", func(t *testing.T) {
		r := nrel.NewRelation("id")
		id := nodeid.New(1, 2, 3)
		r.Append(nrel.Tuple{nrel.ID(id)})
		r.Append(nrel.Tuple{nrel.ID(id)})
		r.Append(nrel.Tuple{nrel.ID(nil)})
		r.Append(nrel.Tuple{nrel.ID(nodeid.New(1, 2, 4))})
		assertRoundTrip(t, r)
	})
	t.Run("nested empty table", func(t *testing.T) {
		r := nrel.NewRelation("t")
		r.Append(nrel.Tuple{nrel.Table(nrel.NewRelation("x"))})
		r.Append(nrel.Tuple{nrel.Value{Kind: nrel.KindTable}})
		assertRoundTrip(t, r)
	})
}

// TestCodecContentKeepsIDs checks a content subtree that does not start at
// the root (the SubtreeKeepIDs case) round-trips with original Dewey IDs.
func TestCodecContentKeepsIDs(t *testing.T) {
	doc := xmltree.MustParseParen(`a(b(c "1" d) e)`)
	sub := doc.Root.Children[0].SubtreeKeepIDs() // subtree at ID 1.1
	r := nrel.NewRelation("c")
	r.Append(nrel.Tuple{nrel.Content(sub)})
	assertRoundTrip(t, r)
	got, err := DecodeRelation(EncodeRelation(r))
	if err != nil {
		t.Fatal(err)
	}
	root := got.Rows[0][0].Content.Root
	if root.ID.String() != "1.1" {
		t.Fatalf("subtree root ID: got %s want 1.1", root.ID)
	}
	if root.Children[1].ID.String() != "1.1.3" {
		t.Fatalf("child ID: got %s want 1.1.3", root.Children[1].ID)
	}
}

func TestDecodeErrors(t *testing.T) {
	r := nrel.NewRelation("s0.id", "s0.v")
	for i := 0; i < 10; i++ {
		r.Append(nrel.Tuple{nrel.ID(nodeid.New(1, uint32(i+1))), nrel.String("abc")})
	}
	data := EncodeRelation(r)

	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 3, len(Magic), len(Magic) + 1, len(data) / 2, len(data) - 1} {
			if _, err := DecodeRelation(data[:n]); err == nil {
				t.Fatalf("truncation to %d bytes not detected", n)
			}
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte("NOPE"), data[4:]...)
		if _, err := DecodeRelation(bad); err == nil || !strings.Contains(err.Error(), "magic") {
			t.Fatalf("bad magic not detected: %v", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[4] = 99
		if _, err := DecodeRelation(bad); err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("bad version not detected: %v", err)
		}
	})
	t.Run("bit flip fails CRC", func(t *testing.T) {
		// Flip one byte in every position past the version; every flip must
		// be rejected (checksum, bounds or validation), never silently
		// accepted as a different relation.
		for pos := 6; pos < len(data); pos++ {
			bad := append([]byte(nil), data...)
			bad[pos] ^= 0x40
			got, err := DecodeRelation(bad)
			if err != nil {
				continue
			}
			if EncodeRelationString(got) != EncodeRelationString(r) {
				t.Fatalf("flip at %d decoded to a different relation without error", pos)
			}
		}
	})
}

// TestDecodeRejectsAllocationBomb feeds a syntactically valid (CRC-correct)
// segment whose header declares a tuple grid far larger than the input;
// decoding must refuse before allocating.
func TestDecodeRejectsAllocationBomb(t *testing.T) {
	var data []byte
	data = append(data, Magic...)
	data = binary.LittleEndian.AppendUint16(data, Version)
	var hdr []byte
	const n = 1 << 16
	hdr = binary.AppendUvarint(hdr, n) // ncols, all with empty names
	for i := 0; i < n; i++ {
		hdr = binary.AppendUvarint(hdr, 0)
	}
	hdr = binary.AppendUvarint(hdr, n) // nrows: n*n values ≫ len(data)
	data = appendBlock(data, hdr)
	if _, err := DecodeRelation(data); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Fatalf("allocation bomb not rejected: %v", err)
	}
}

// EncodeRelationString is a test helper comparing relations structurally.
func EncodeRelationString(r *nrel.Relation) string {
	return strings.Join(r.Cols, ",") + "\n" + r.String()
}

func TestSegmentFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(11))
	r := randomRelation(rng, 25, 1)
	path := filepath.Join(dir, "seg.xvs")
	n, err := WriteFile(path, r)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != n {
		t.Fatalf("reported %d bytes, file has %d", n, fi.Size())
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsSet(r) {
		t.Fatal("file round-trip changed the relation")
	}
	rows := 0
	if err := Scan(path, func(cols []string, row nrel.Tuple) error {
		if len(cols) != len(r.Cols) || len(row) != len(cols) {
			t.Fatalf("scan arity mismatch")
		}
		rows++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rows != r.Len() {
		t.Fatalf("scan saw %d rows, want %d", rows, r.Len())
	}
}

func TestCatalogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cat := &Catalog{
		Document: "auction.xml",
		Summary:  "site(item(name))",
		Views: []Entry{
			{Name: "v1", Pattern: "site(//item[id])", Columns: []string{"s0.id"}, Rows: 3, Bytes: 42, Segment: "seg-0000.xvs"},
		},
	}
	if err := WriteCatalog(dir, cat); err != nil {
		t.Fatal(err)
	}
	got, err := OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.SummaryHash != SummaryHash("site(item(name))") {
		t.Fatal("summary hash not recorded")
	}
	if e := got.Entry("v1"); e == nil || e.Segment != "seg-0000.xvs" || e.Rows != 3 {
		t.Fatalf("entry mismatch: %+v", e)
	}
	if got.Entry("nope") != nil {
		t.Fatal("unexpected entry")
	}
	t.Run("tampered summary", func(t *testing.T) {
		path := filepath.Join(dir, ManifestName)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		bad := strings.Replace(string(data), "site(item(name))", "site(item(age))", 1)
		if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenCatalog(dir); err == nil || !strings.Contains(err.Error(), "hash mismatch") {
			t.Fatalf("tampered summary not detected: %v", err)
		}
	})
}

// TestCatalogVersionRange pins the compatibility policy: version-2
// catalogs (pre-statistics) still open, anything outside [Min, Current]
// is rejected with a version message, not a parse error.
func TestCatalogVersionRange(t *testing.T) {
	dir := t.TempDir()
	cat := &Catalog{Summary: "site(item)"}
	if err := WriteCatalog(dir, cat); err != nil {
		t.Fatal(err)
	}
	if cat.FormatVersion != CatalogVersion {
		t.Fatalf("written version %d, want %d", cat.FormatVersion, CatalogVersion)
	}
	rewriteVersion := func(v int) {
		t.Helper()
		c := &Catalog{Summary: "site(item)"}
		data, err := json.MarshalIndent(c, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		s := strings.Replace(string(data), `"format_version": 0`, fmt.Sprintf(`"format_version": %d`, v), 1)
		s = strings.Replace(s, `"summary_hash": ""`, fmt.Sprintf(`"summary_hash": %q`, SummaryHash("site(item)")), 1)
		if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rewriteVersion(MinCatalogVersion)
	if _, err := OpenCatalog(dir); err != nil {
		t.Fatalf("version %d must still open: %v", MinCatalogVersion, err)
	}
	for _, v := range []int{MinCatalogVersion - 1, CatalogVersion + 1} {
		rewriteVersion(v)
		if _, err := OpenCatalog(dir); err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("version %d not rejected with a version message: %v", v, err)
		}
	}
}
