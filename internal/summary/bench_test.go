package summary_test

import (
	"fmt"
	"testing"

	"xmlviews/internal/datagen"
	"xmlviews/internal/summary"
	"xmlviews/internal/xmltree"
)

// BenchmarkSummaryMaintain compares the per-batch cost of incremental
// summary maintenance (clone + one subtree insert and delete + text
// adjustment + flag recomputation + snapshot — everything a maintenance
// batch pays) against rebuilding the summary from the document, at two
// document scales. The incremental path is O(|summary| + change) and so
// roughly flat in document size; the rebuild is O(document).
func BenchmarkSummaryMaintain(b *testing.B) {
	for _, scale := range []int{10, 40} {
		doc := datagen.XMark(scale, 1)
		var item *xmltree.Node
		doc.Root.Walk(func(n *xmltree.Node) bool {
			if item == nil && n.Label == "item" {
				item = n
			}
			return item == nil
		})
		if item == nil {
			b.Fatal("no item node")
		}
		sub := xmltree.MustParseParen(`mailbox(mail(from "a@example.com" to "b@example.org"))`)

		b.Run(fmt.Sprintf("incremental/xmark%d", scale), func(b *testing.B) {
			m := summary.NewMaintained(doc)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				work := m.Clone()
				n, err := doc.InsertSubtree(item.ID, nil, sub)
				if err != nil {
					b.Fatal(err)
				}
				if err := work.AddSubtree(n); err != nil {
					b.Fatal(err)
				}
				if err := work.AdjustText(n.Children[0].Children[0], 3); err != nil {
					b.Fatal(err)
				}
				if err := work.RemoveSubtree(n); err != nil {
					b.Fatal(err)
				}
				if _, err := doc.DeleteSubtree(n.ID); err != nil {
					b.Fatal(err)
				}
				work.RecomputeEdgeFlags()
				if work.Snapshot() == nil {
					b.Fatal("nil snapshot")
				}
			}
		})
		b.Run(fmt.Sprintf("rebuild/xmark%d", scale), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if summary.Build(doc) == nil {
					b.Fatal("nil summary")
				}
			}
		})
	}
}
