package summary

import (
	"fmt"
	"math"
)

// Builder constructs summaries by hand, which tests and examples use to
// mirror the paper's figures exactly.
type Builder struct {
	s *Summary
}

// NewBuilder starts a summary whose root carries the given label.
func NewBuilder(rootLabel string) *Builder {
	s := &Summary{byLabel: map[string][]int{}}
	s.nodes = append(s.nodes, &Node{ID: 0, Label: rootLabel, Parent: -1, Depth: 1})
	s.byLabel[rootLabel] = []int{0}
	return &Builder{s: s}
}

// Child adds a child path under parent and returns its id. strong marks the
// edge strong; oneToOne implies strong.
func (b *Builder) Child(parent int, label string, strong, oneToOne bool) int {
	if parent < 0 || parent >= len(b.s.nodes) {
		panic(fmt.Sprintf("summary: invalid parent id %d", parent))
	}
	for _, c := range b.s.nodes[parent].Children {
		if b.s.nodes[c].Label == label {
			panic(fmt.Sprintf("summary: duplicate child %q under node %d", label, parent))
		}
	}
	id := len(b.s.nodes)
	n := &Node{
		ID: id, Label: label, Parent: parent,
		Depth:  b.s.nodes[parent].Depth + 1,
		Strong: strong || oneToOne, OneToOne: oneToOne,
	}
	b.s.nodes = append(b.s.nodes, n)
	b.s.nodes[parent].Children = append(b.s.nodes[parent].Children, id)
	b.s.byLabel[label] = append(b.s.byLabel[label], id)
	return id
}

// Summary returns the built summary. The builder must not be used after.
func (b *Builder) Summary() *Summary { return b.s }

// Parse parses the parenthesized summary notation produced by
// Summary.String: labels with optional child lists; a '!' prefix marks the
// incoming edge strong, '=' marks it one-to-one. Example: "a(!b(c d) =e)".
// The statistics annotations of StatsString — ':count:textbytes' after a
// label — are accepted too, so catalogs written with or without statistics
// both parse.
func Parse(src string) (*Summary, error) {
	p := &sumParser{src: src}
	s, err := p.parse()
	if err != nil {
		return nil, err
	}
	return s, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) *Summary {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

type sumParser struct {
	src string
	pos int
}

func (p *sumParser) parse() (*Summary, error) {
	p.skipSpace()
	label, err := p.label()
	if err != nil {
		return nil, err
	}
	b := NewBuilder(label)
	if err := p.stats(b.s.nodes[RootID]); err != nil {
		return nil, err
	}
	if err := p.children(b, RootID); err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("summary: trailing input at %d in %q", p.pos, p.src)
	}
	return b.Summary(), nil
}

func (p *sumParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *sumParser) label() (string, error) {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '@' || c == '_' || c == '-' || c == '*' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", fmt.Errorf("summary: expected label at %d in %q", p.pos, p.src)
	}
	return p.src[start:p.pos], nil
}

// stats parses an optional ':count:textbytes' annotation onto the node.
func (p *sumParser) stats(n *Node) error {
	if p.pos >= len(p.src) || p.src[p.pos] != ':' {
		return nil
	}
	p.pos++
	count, err := p.number()
	if err != nil {
		return err
	}
	if count > math.MaxInt32 {
		// Count is an int; reject values a 32-bit build would wrap
		// rather than silently feeding the cost model garbage.
		return fmt.Errorf("summary: node count %d too large in %q", count, p.src)
	}
	if p.pos >= len(p.src) || p.src[p.pos] != ':' {
		return fmt.Errorf("summary: expected ':textbytes' at %d in %q", p.pos, p.src)
	}
	p.pos++
	text, err := p.number()
	if err != nil {
		return err
	}
	n.Count = int(count)
	n.TextBytes = text
	return nil
}

func (p *sumParser) number() (int64, error) {
	start := p.pos
	var v int64
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		d := int64(p.src[p.pos] - '0')
		if v > (math.MaxInt64-d)/10 {
			return 0, fmt.Errorf("summary: number too large at %d in %q", start, p.src)
		}
		v = v*10 + d
		p.pos++
	}
	if p.pos == start {
		return 0, fmt.Errorf("summary: expected number at %d in %q", p.pos, p.src)
	}
	return v, nil
}

func (p *sumParser) children(b *Builder, parent int) error {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '(' {
		return nil
	}
	p.pos++
	for {
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == ')' {
			p.pos++
			return nil
		}
		if p.pos >= len(p.src) {
			return fmt.Errorf("summary: missing ')' in %q", p.src)
		}
		strong, oneToOne := false, false
		switch p.src[p.pos] {
		case '!':
			strong = true
			p.pos++
		case '=':
			oneToOne = true
			p.pos++
		}
		label, err := p.label()
		if err != nil {
			return err
		}
		id := b.Child(parent, label, strong, oneToOne)
		if err := p.stats(b.s.nodes[id]); err != nil {
			return err
		}
		if err := p.children(b, id); err != nil {
			return err
		}
	}
}
