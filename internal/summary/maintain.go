package summary

import (
	"fmt"
	"sort"

	"xmlviews/internal/xmltree"
)

// Maintained is the mutable form of a path summary, designed for
// incremental maintenance under typed document updates. Each summary node's
// Count acts as a reference count of the document nodes on its path:
// deletions decrement and prune empty nodes, insertions add or merge, and
// text edits adjust TextBytes — all in time proportional to the affected
// subtree, never the document. The per-edge occurrence counters needed for
// strong/one-to-one detection (how many parent-path nodes have ≥1 / >1
// children on an edge) are maintained alongside, and RecomputeEdgeFlags
// refreshes the Strong/OneToOne flags from them in O(|S|).
//
// A Maintained summary renders byte-identically to summary.Build of the
// same document (the differential oracle enforces this per batch): both
// keep children label-sorted, which makes the text independent of the
// order in which paths appeared or disappeared.
//
// The callers' contract, mirroring the maintenance engine's update loop:
//
//   - insert:  apply the insertion, then AddSubtree(insertedRoot);
//   - delete:  RemoveSubtree(target) while it is still attached, then apply;
//   - rename:  RemoveSubtree(target), relabel, AddSubtree(target)
//     (RenameRoot for the document root, which only swaps the label);
//   - settext: apply, then AdjustText(target, newLen-oldLen);
//
// and RecomputeEdgeFlags once per batch. Maintained is not safe for
// concurrent use; batch atomicity is obtained by mutating a Clone and
// swapping it in on success.
type Maintained struct {
	s *Summary
	// child[sid] maps a child label to its summary node id. nil for holes.
	child []map[string]int
	// withChild[cid]/withMany[cid] as in rawBuild, as dense arrays.
	withChild []int
	withMany  []int
	// free lists pruned node ids available for reuse (their s.nodes entries
	// are nil until then).
	free []int
}

// NewMaintained builds the canonical summary of the document together with
// the bookkeeping incremental maintenance needs. Document nodes are
// annotated with their (canonical) PathID, exactly like Build.
func NewMaintained(doc *xmltree.Document) *Maintained {
	raw := buildRaw(doc)

	// Canonicalize: renumber nodes in preorder with label-sorted children.
	remap := make([]int, len(raw.s.nodes))
	order := make([]int, 0, len(raw.s.nodes))
	var number func(old int)
	number = func(old int) {
		remap[old] = len(order)
		order = append(order, old)
		kids := raw.s.nodes[old].Children
		sort.Slice(kids, func(i, j int) bool {
			return raw.s.nodes[kids[i]].Label < raw.s.nodes[kids[j]].Label
		})
		for _, c := range kids {
			number(c)
		}
	}
	number(0)

	m := &Maintained{
		s:         &Summary{nodes: make([]*Node, len(order)), byLabel: map[string][]int{}},
		child:     make([]map[string]int, len(order)),
		withChild: make([]int, len(order)),
		withMany:  make([]int, len(order)),
	}
	for newID, old := range order {
		on := raw.s.nodes[old]
		n := &Node{
			ID: newID, Label: on.Label, Depth: on.Depth,
			Strong: on.Strong, OneToOne: on.OneToOne,
			Count: on.Count, TextBytes: on.TextBytes,
			Parent: -1,
		}
		if on.Parent >= 0 {
			n.Parent = remap[on.Parent]
		}
		n.Children = make([]int, len(on.Children))
		cm := make(map[string]int, len(on.Children))
		for i, c := range on.Children {
			n.Children[i] = remap[c]
			cm[raw.s.nodes[c].Label] = remap[c]
		}
		m.s.nodes[newID] = n
		m.child[newID] = cm
		m.s.byLabel[n.Label] = append(m.s.byLabel[n.Label], newID)
		m.withChild[newID] = raw.withChild[old]
		m.withMany[newID] = raw.withMany[old]
	}
	// Re-annotate the document with the canonical ids (buildRaw left the
	// raw first-encounter ids on it).
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		n.PathID = remap[n.PathID]
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(doc.Root)
	return m
}

// Clone returns an independent deep copy; mutating one never affects the
// other. Maintenance batches mutate a clone and commit it on success, so a
// failing batch leaves the original untouched.
func (m *Maintained) Clone() *Maintained {
	out := &Maintained{
		s:         &Summary{nodes: make([]*Node, len(m.s.nodes)), byLabel: make(map[string][]int, len(m.s.byLabel))},
		child:     make([]map[string]int, len(m.child)),
		withChild: append([]int(nil), m.withChild...),
		withMany:  append([]int(nil), m.withMany...),
		free:      append([]int(nil), m.free...),
	}
	for i, n := range m.s.nodes {
		if n == nil {
			continue
		}
		cp := *n
		cp.Children = append([]int(nil), n.Children...)
		out.s.nodes[i] = &cp
		cm := make(map[string]int, len(m.child[i]))
		for k, v := range m.child[i] {
			cm[k] = v
		}
		out.child[i] = cm
	}
	for k, v := range m.s.byLabel {
		out.s.byLabel[k] = append([]int(nil), v...)
	}
	return out
}

// StatsString renders the maintained summary with statistics annotations;
// byte-identical to summary.Build(doc).StatsString() for the document the
// maintained summary tracks.
func (m *Maintained) StatsString() string { return m.s.StatsString() }

// Snapshot returns an immutable, compact *Summary equal to the maintained
// state, with canonical preorder ids (the ids Parse would assign to
// StatsString's output). Serving layers rewrite against snapshots, so cost
// attribution iterates the same node ids a restarted server would see.
func (m *Maintained) Snapshot() *Summary {
	out := &Summary{byLabel: map[string][]int{}}
	var copyNode func(old, parent int) int
	copyNode = func(old, parent int) int {
		on := m.s.nodes[old]
		id := len(out.nodes)
		n := &Node{
			ID: id, Label: on.Label, Parent: parent, Depth: on.Depth,
			Strong: on.Strong, OneToOne: on.OneToOne,
			Count: on.Count, TextBytes: on.TextBytes,
		}
		out.nodes = append(out.nodes, n)
		out.byLabel[n.Label] = append(out.byLabel[n.Label], id)
		for _, c := range on.Children {
			n.Children = append(n.Children, copyNode(c, id))
		}
		return id
	}
	copyNode(RootID, -1)
	return out
}

// resolve walks a live document node's label path through the child index
// and returns its summary node id.
func (m *Maintained) resolve(n *xmltree.Node) (int, error) {
	var chain []*xmltree.Node
	for cur := n; cur != nil; cur = cur.Parent {
		chain = append(chain, cur)
	}
	root := chain[len(chain)-1]
	if root.Label != m.s.nodes[RootID].Label {
		return -1, fmt.Errorf("summary: root label %q does not match maintained root %q", root.Label, m.s.nodes[RootID].Label)
	}
	sid := RootID
	for i := len(chain) - 2; i >= 0; i-- {
		cid, ok := m.child[sid][chain[i].Label]
		if !ok {
			return -1, fmt.Errorf("summary: path %s/%s not in maintained summary", m.s.PathString(sid), chain[i].Label)
		}
		sid = cid
	}
	return sid, nil
}

// ensureChild returns the summary node for label under parent sid, creating
// it (label-sorted among its siblings, reusing pruned ids) if absent.
func (m *Maintained) ensureChild(sid int, label string) int {
	if cid, ok := m.child[sid][label]; ok {
		return cid
	}
	var cid int
	if n := len(m.free); n > 0 {
		cid = m.free[n-1]
		m.free = m.free[:n-1]
	} else {
		cid = len(m.s.nodes)
		m.s.nodes = append(m.s.nodes, nil)
		m.child = append(m.child, nil)
		m.withChild = append(m.withChild, 0)
		m.withMany = append(m.withMany, 0)
	}
	p := m.s.nodes[sid]
	m.s.nodes[cid] = &Node{ID: cid, Label: label, Parent: sid, Depth: p.Depth + 1}
	m.child[cid] = map[string]int{}
	m.withChild[cid], m.withMany[cid] = 0, 0
	// Keep the children label-sorted — the canonical rendering invariant.
	pos := sort.Search(len(p.Children), func(i int) bool {
		return m.s.nodes[p.Children[i]].Label >= label
	})
	p.Children = append(p.Children, 0)
	copy(p.Children[pos+1:], p.Children[pos:])
	p.Children[pos] = cid
	m.child[sid][label] = cid
	m.s.byLabel[label] = append(m.s.byLabel[label], cid)
	return cid
}

// prune detaches a zero-count summary node from its parent and recycles its
// id. Its own children must already be pruned.
func (m *Maintained) prune(cid int) {
	n := m.s.nodes[cid]
	if len(n.Children) != 0 {
		panic(fmt.Sprintf("summary: pruning node %d (%s) with live children", cid, n.Label))
	}
	p := m.s.nodes[n.Parent]
	for i, c := range p.Children {
		if c == cid {
			p.Children = append(p.Children[:i:i], p.Children[i+1:]...)
			break
		}
	}
	delete(m.child[n.Parent], n.Label)
	ids := m.s.byLabel[n.Label]
	for i, id := range ids {
		if id == cid {
			m.s.byLabel[n.Label] = append(ids[:i:i], ids[i+1:]...)
			break
		}
	}
	if len(m.s.byLabel[n.Label]) == 0 {
		delete(m.s.byLabel, n.Label)
	}
	m.s.nodes[cid] = nil
	m.child[cid] = nil
	m.withChild[cid], m.withMany[cid] = 0, 0
	m.free = append(m.free, cid)
}

// AddSubtree merges the counts of an attached subtree rooted at n into the
// summary: n was just inserted (or just relabeled, after RemoveSubtree).
// Cost is O(|subtree| + fanout of n's parent).
func (m *Maintained) AddSubtree(n *xmltree.Node) error {
	p := n.Parent
	if p == nil {
		return fmt.Errorf("summary: AddSubtree of the document root")
	}
	pid, err := m.resolve(p)
	if err != nil {
		return err
	}
	cid := m.ensureChild(pid, n.Label)
	// Boundary: n's parent is a pre-existing document node whose
	// contribution to the edge counters changes by exactly one child.
	k := 0
	for _, c := range p.Children {
		if c.Label == n.Label {
			k++
		}
	}
	switch k {
	case 1:
		m.withChild[cid]++
	case 2:
		m.withMany[cid]++
	}
	m.addCounts(cid, n)
	return nil
}

// addCounts adds the full contribution of document node d (mapped to sid)
// and its subtree: path counts, text bytes, and — since every node of the
// subtree is new to the summary — each internal node's whole edge-counter
// contribution.
func (m *Maintained) addCounts(sid int, d *xmltree.Node) {
	n := m.s.nodes[sid]
	n.Count++
	n.TextBytes += int64(len(d.Value))
	perLabel := map[string]int{}
	for _, c := range d.Children {
		perLabel[c.Label]++
	}
	// Visit labels in document child order, not map order: ensureChild
	// allocates summary ids, so replaying the same update stream must
	// assign the same ids (the differential harness compares maintained
	// state across runs, and reproducible ids keep diagnostics stable).
	for _, c := range d.Children {
		cnt, ok := perLabel[c.Label]
		if !ok {
			continue // label already handled at its first occurrence
		}
		delete(perLabel, c.Label)
		cid := m.ensureChild(sid, c.Label)
		m.withChild[cid]++
		if cnt > 1 {
			m.withMany[cid]++
		}
	}
	for _, c := range d.Children {
		m.addCounts(m.child[sid][c.Label], c)
	}
}

// RemoveSubtree subtracts the contribution of the still-attached subtree
// rooted at n (call it before detaching), pruning summary nodes whose
// reference count reaches zero. Cost is O(|subtree| + fanout of n's
// parent).
func (m *Maintained) RemoveSubtree(n *xmltree.Node) error {
	p := n.Parent
	if p == nil {
		return fmt.Errorf("summary: RemoveSubtree of the document root")
	}
	pid, err := m.resolve(p)
	if err != nil {
		return err
	}
	cid, ok := m.child[pid][n.Label]
	if !ok {
		return fmt.Errorf("summary: path %s/%s not in maintained summary", m.s.PathString(pid), n.Label)
	}
	k := 0
	for _, c := range p.Children {
		if c.Label == n.Label {
			k++
		}
	}
	switch k {
	case 1:
		m.withChild[cid]--
	case 2:
		m.withMany[cid]--
	}
	m.removeCounts(cid, n)
	return nil
}

func (m *Maintained) removeCounts(sid int, d *xmltree.Node) {
	n := m.s.nodes[sid]
	n.Count--
	n.TextBytes -= int64(len(d.Value))
	perLabel := map[string]int{}
	for _, c := range d.Children {
		perLabel[c.Label]++
	}
	// Document child order, mirroring addCounts (see the note there).
	for _, c := range d.Children {
		cnt, ok := perLabel[c.Label]
		if !ok {
			continue
		}
		delete(perLabel, c.Label)
		cid := m.child[sid][c.Label]
		m.withChild[cid]--
		if cnt > 1 {
			m.withMany[cid]--
		}
	}
	for _, c := range d.Children {
		m.removeCounts(m.child[sid][c.Label], c)
	}
	// Children were processed (and possibly pruned) above; prune bottom-up.
	for _, c := range d.Children {
		if cid, ok := m.child[sid][c.Label]; ok && m.s.nodes[cid].Count == 0 {
			m.prune(cid)
		}
	}
	if n.Count == 0 && n.Parent >= 0 && len(n.Children) == 0 {
		m.prune(sid)
	}
}

// AdjustText shifts the text-byte statistic of n's path by delta (the
// settext hook: delta = len(newValue) - len(oldValue)).
func (m *Maintained) AdjustText(n *xmltree.Node, delta int64) error {
	sid, err := m.resolve(n)
	if err != nil {
		return err
	}
	m.s.nodes[sid].TextBytes += delta
	return nil
}

// RenameRoot relabels the summary root — renaming the document root changes
// every path's first label but no structure, so it is O(1).
func (m *Maintained) RenameRoot(label string) {
	r := m.s.nodes[RootID]
	if r.Label == label {
		return
	}
	ids := m.s.byLabel[r.Label]
	for i, id := range ids {
		if id == RootID {
			m.s.byLabel[r.Label] = append(ids[:i:i], ids[i+1:]...)
			break
		}
	}
	if len(m.s.byLabel[r.Label]) == 0 {
		delete(m.s.byLabel, r.Label)
	}
	r.Label = label
	m.s.byLabel[label] = append(m.s.byLabel[label], RootID)
}

// RecomputeEdgeFlags refreshes every Strong/OneToOne flag from the
// maintained occurrence counters: the edge to a node is strong when every
// document node on the parent path has a child on it, one-to-one when none
// has more than one. O(|S|); call once per batch.
func (m *Maintained) RecomputeEdgeFlags() {
	for _, n := range m.s.nodes {
		if n == nil || n.Parent < 0 {
			continue
		}
		pc := m.s.nodes[n.Parent].Count
		n.Strong = pc > 0 && m.withChild[n.ID] == pc
		n.OneToOne = n.Strong && m.withMany[n.ID] == 0
	}
}
