package summary

import (
	"fmt"
	"math/rand"
	"testing"

	"xmlviews/internal/xmltree"
)

// checkAgainstBuild asserts the maintained summary renders byte-identically
// to a from-scratch Build of the document.
func checkAgainstBuild(t *testing.T, m *Maintained, doc *xmltree.Document, step string) {
	t.Helper()
	want := Build(doc).StatsString()
	if got := m.StatsString(); got != want {
		t.Fatalf("%s: maintained summary diverged\nmaintained: %s\nrebuild:    %s", step, got, want)
	}
	snap := m.Snapshot()
	if got := snap.StatsString(); got != want {
		t.Fatalf("%s: snapshot diverged: %s vs %s", step, got, want)
	}
	// Snapshot ids must be the canonical ids a reparse would assign.
	back := MustParse(want)
	for _, id := range back.NodeIDs() {
		b, s := back.Node(id), snap.Node(id)
		if b.Label != s.Label || b.Parent != s.Parent || b.Count != s.Count {
			t.Fatalf("%s: snapshot id %d = %s(parent %d, count %d), reparse has %s(parent %d, count %d)",
				step, id, s.Label, s.Parent, s.Count, b.Label, b.Parent, b.Count)
		}
	}
}

// applyMaintained applies one update to both the document and the
// maintained summary, following the engine's calling contract.
func applyMaintained(t *testing.T, m *Maintained, doc *xmltree.Document, u xmltree.Update) {
	t.Helper()
	switch u.Kind {
	case xmltree.UpdateInsert:
		n, err := doc.InsertSubtree(u.Parent, u.Before, u.Subtree)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.AddSubtree(n); err != nil {
			t.Fatal(err)
		}
	case xmltree.UpdateDelete:
		n := doc.FindByID(u.Target)
		if n == nil {
			t.Fatalf("delete target %s not found", u.Target)
		}
		if err := m.RemoveSubtree(n); err != nil {
			t.Fatal(err)
		}
		if _, err := doc.DeleteSubtree(u.Target); err != nil {
			t.Fatal(err)
		}
	case xmltree.UpdateRename:
		n := doc.FindByID(u.Target)
		if n == nil {
			t.Fatalf("rename target %s not found", u.Target)
		}
		if n.Parent == nil {
			if _, err := doc.RenameNode(u.Target, u.Label); err != nil {
				t.Fatal(err)
			}
			m.RenameRoot(u.Label)
			break
		}
		if err := m.RemoveSubtree(n); err != nil {
			t.Fatal(err)
		}
		if _, err := doc.RenameNode(u.Target, u.Label); err != nil {
			t.Fatal(err)
		}
		if err := m.AddSubtree(n); err != nil {
			t.Fatal(err)
		}
	case xmltree.UpdateSetValue:
		n := doc.FindByID(u.Target)
		if n == nil {
			t.Fatalf("settext target %s not found", u.Target)
		}
		delta := int64(len(u.Value)) - int64(len(n.Value))
		if _, err := doc.SetNodeValue(u.Target, u.Value); err != nil {
			t.Fatal(err)
		}
		if err := m.AdjustText(n, delta); err != nil {
			t.Fatal(err)
		}
	}
	m.RecomputeEdgeFlags()
}

func TestMaintainedBasicOps(t *testing.T) {
	doc := xmltree.MustParseParen(`site(item(name "pen" price "3") item(name "ink"))`)
	m := NewMaintained(doc)
	checkAgainstBuild(t, m, doc, "initial")

	// A fresh label sorting before existing siblings.
	items := doc.Root.Children
	sub := xmltree.MustParseParen(`aaa(zzz "v")`)
	applyMaintained(t, m, doc, xmltree.Update{Kind: xmltree.UpdateInsert, Parent: items[0].ID, Subtree: sub})
	checkAgainstBuild(t, m, doc, "insert new-first label")

	// Settext adjusts TextBytes only.
	applyMaintained(t, m, doc, xmltree.Update{Kind: xmltree.UpdateSetValue, Target: items[0].Children[0].ID, Value: "pencil"})
	checkAgainstBuild(t, m, doc, "settext")

	// Deleting the only price prunes its summary node.
	applyMaintained(t, m, doc, xmltree.Update{Kind: xmltree.UpdateDelete, Target: items[0].Children[1].ID})
	checkAgainstBuild(t, m, doc, "delete pruning path")

	// Rename moves a whole subtree across summary nodes.
	applyMaintained(t, m, doc, xmltree.Update{Kind: xmltree.UpdateRename, Target: items[1].ID, Label: "gadget"})
	checkAgainstBuild(t, m, doc, "rename subtree")

	// Root rename relabels every path's head.
	applyMaintained(t, m, doc, xmltree.Update{Kind: xmltree.UpdateRename, Target: doc.Root.ID, Label: "shop"})
	checkAgainstBuild(t, m, doc, "rename root")
}

func TestMaintainedStrongFlagFlips(t *testing.T) {
	// Initially every item has a name (strong, one-to-one).
	doc := xmltree.MustParseParen(`site(item(name "a") item(name "b"))`)
	m := NewMaintained(doc)
	checkAgainstBuild(t, m, doc, "initial")

	// A second name under item 0 kills one-to-one but keeps strong.
	applyMaintained(t, m, doc, xmltree.Update{
		Kind: xmltree.UpdateInsert, Parent: doc.Root.Children[0].ID,
		Subtree: xmltree.MustParseParen(`name "c"`)})
	checkAgainstBuild(t, m, doc, "one-to-one lost")

	// An item without a name kills strong.
	applyMaintained(t, m, doc, xmltree.Update{
		Kind: xmltree.UpdateInsert, Parent: doc.Root.ID,
		Subtree: xmltree.MustParseParen(`item(price "1")`)})
	checkAgainstBuild(t, m, doc, "strong lost")

	// Removing that item resurrects strong.
	bare := doc.Root.Children[len(doc.Root.Children)-1]
	applyMaintained(t, m, doc, xmltree.Update{Kind: xmltree.UpdateDelete, Target: bare.ID})
	checkAgainstBuild(t, m, doc, "strong resurrected")
}

// TestMaintainedRandom drives hundreds of random updates through the
// maintained summary and asserts byte-identity with Build after each one.
func TestMaintainedRandom(t *testing.T) {
	labels := []string{"a", "b", "c", "dd", "e"}
	for seed := int64(0); seed < 4; seed++ {
		r := rand.New(rand.NewSource(seed))
		doc := xmltree.MustParseParen(`a(b "1" (c "2") b(c) dd)`)
		m := NewMaintained(doc)
		for step := 0; step < 120; step++ {
			nodes := doc.Nodes()
			n := nodes[r.Intn(len(nodes))]
			var u xmltree.Update
			switch r.Intn(4) {
			case 0:
				sub := xmltree.NewDocument(labels[r.Intn(len(labels))])
				sub.Root.Value = fmt.Sprintf("v%d", step)
				cur := sub.Root
				for d := 0; d < r.Intn(3); d++ {
					cur = cur.AddChild(labels[r.Intn(len(labels))], fmt.Sprintf("w%d.%d", step, d))
				}
				u = xmltree.Update{Kind: xmltree.UpdateInsert, Parent: n.ID, Subtree: sub}
			case 1:
				if n.Parent == nil || doc.Size() < 4 {
					continue
				}
				u = xmltree.Update{Kind: xmltree.UpdateDelete, Target: n.ID}
			case 2:
				u = xmltree.Update{Kind: xmltree.UpdateRename, Target: n.ID, Label: labels[r.Intn(len(labels))]}
			default:
				u = xmltree.Update{Kind: xmltree.UpdateSetValue, Target: n.ID, Value: fmt.Sprintf("t%d", r.Intn(1000))}
			}
			applyMaintained(t, m, doc, u)
			checkAgainstBuild(t, m, doc, fmt.Sprintf("seed %d step %d (%v)", seed, step, u.Kind))
		}
	}
}

// TestMaintainedCloneIsolation: mutating a clone must not leak into the
// original (the engine's rollback depends on it).
func TestMaintainedCloneIsolation(t *testing.T) {
	doc := xmltree.MustParseParen(`a(b "1" c)`)
	m := NewMaintained(doc)
	before := m.StatsString()
	clone := m.Clone()
	n, err := doc.InsertSubtree(doc.Root.ID, nil, xmltree.MustParseParen(`zz "9"`))
	if err != nil {
		t.Fatal(err)
	}
	if err := clone.AddSubtree(n); err != nil {
		t.Fatal(err)
	}
	clone.RecomputeEdgeFlags()
	if m.StatsString() != before {
		t.Fatalf("clone mutation leaked into original: %s", m.StatsString())
	}
	if clone.StatsString() == before {
		t.Fatal("clone did not record the insertion")
	}
}

// TestBuildCanonicalOrder: Build must order summary children by label
// regardless of document element order, so two documents with the same
// statistics render identically.
func TestBuildCanonicalOrder(t *testing.T) {
	d1 := xmltree.MustParseParen(`a(c "x" b(e d))`)
	d2 := xmltree.MustParseParen(`a(b(d e) c "x")`)
	if s1, s2 := Build(d1).StatsString(), Build(d2).StatsString(); s1 != s2 {
		t.Fatalf("canonical summaries differ:\n%s\n%s", s1, s2)
	}
	s := Build(d1)
	if got := s.String(); got != "a(=b(=d =e) =c)" {
		t.Fatalf("String = %q", got)
	}
	// Build's ids must agree with Parse's for the rendered text, keeping
	// cost attribution identical across live summaries and reparsed ones.
	back := MustParse(s.StatsString())
	for _, id := range s.NodeIDs() {
		if s.Node(id).Label != back.Node(id).Label {
			t.Fatalf("id %d: Build has %s, reparse has %s", id, s.Node(id).Label, back.Node(id).Label)
		}
	}
}
