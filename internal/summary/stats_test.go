package summary

import (
	"testing"

	"xmlviews/internal/xmltree"
)

func TestBuildCollectsStats(t *testing.T) {
	doc := xmltree.MustParseParen(`a(b(c "xx") b(c "yyyy" c "z") d "q")`)
	s := Build(doc)
	if !s.HasStats() {
		t.Fatal("built summary must carry statistics")
	}
	if got := s.DocNodes(); got != 7 {
		t.Fatalf("DocNodes = %d, want 7", got)
	}
	// Text bytes: "xx"+"yyyy"+"z" on c (7), "q" on d (1).
	if got := s.TextBytes(); got != 8 {
		t.Fatalf("TextBytes = %d, want 8", got)
	}
	b := s.FindPath("/a/b")
	c := s.FindPath("/a/b/c")
	if s.Node(b).Count != 2 || s.Node(c).Count != 3 {
		t.Fatalf("counts b=%d c=%d, want 2 and 3", s.Node(b).Count, s.Node(c).Count)
	}
	// Fanout of c per b node: 3/2.
	if got := s.AvgFanout(c); got != 1.5 {
		t.Fatalf("AvgFanout(c) = %v, want 1.5", got)
	}
	// Avg text on c: 7 bytes over 3 nodes.
	if got := s.AvgTextBytes(c); got < 2.3 || got > 2.4 {
		t.Fatalf("AvgTextBytes(c) = %v, want ~2.33", got)
	}
	// Root fanout is defined as 1.
	if got := s.AvgFanout(RootID); got != 1 {
		t.Fatalf("AvgFanout(root) = %v, want 1", got)
	}
}

func TestStatsStringRoundTrip(t *testing.T) {
	doc := xmltree.MustParseParen(`a(b(c "xx") b(c "yyyy" c "z") d "q")`)
	s := Build(doc)
	text := s.StatsString()
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("annotated text %q does not parse: %v", text, err)
	}
	if back.StatsString() != text {
		t.Fatalf("round trip changed text: %q -> %q", text, back.StatsString())
	}
	if back.String() != s.String() {
		t.Fatalf("structure changed: %q -> %q", s.String(), back.String())
	}
	for _, id := range s.NodeIDs() {
		want, got := s.Node(id), back.Node(id)
		if want.Count != got.Count || want.TextBytes != got.TextBytes {
			t.Fatalf("node %d stats %d/%d -> %d/%d", id, want.Count, want.TextBytes, got.Count, got.TextBytes)
		}
	}
}

func TestParsePlainNotationStillWorks(t *testing.T) {
	s, err := Parse(`a(!b(c d) =e)`)
	if err != nil {
		t.Fatal(err)
	}
	if s.HasStats() {
		t.Fatal("plain notation must not invent statistics")
	}
	if s.StatsString() != s.String() {
		t.Fatalf("without stats StatsString must equal String, got %q vs %q", s.StatsString(), s.String())
	}
}

func TestParseStatsErrors(t *testing.T) {
	for _, src := range []string{`a:`, `a:1`, `a:1:`, `a:1:2:3`, `a(:1:2)`,
		`a:99999999999999999999:0`, `a:4294967296:0`} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}
