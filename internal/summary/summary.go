// Package summary implements path summaries (strong Dataguides, Goldman &
// Widom [15]) and the paper's enhanced summaries (Section 4.1).
//
// The summary S(d) of a document d is a tree with one node per distinct
// rooted label path of d. An enhanced summary additionally distinguishes
//
//   - strong edges: every document node on the parent path has at least one
//     child on the child path (a parent-child integrity constraint), and
//   - one-to-one edges: every document node on the parent path has exactly
//     one child on the child path (used to relax the nesting-sequence
//     condition of Proposition 4.2).
//
// Summaries are built in linear time (as in [15]) and annotate each
// document node with its summary node id. Build produces a *canonical*
// summary: every node's children are ordered by label, and node ids are
// assigned in preorder of that canonical shape. Canonical summaries make
// the rendered text (and hence the catalog's summary hash) a pure function
// of the document's content — independent of element order and, crucially,
// of update history — which is what lets the incremental maintenance in
// Maintained reproduce Build's output byte for byte.
package summary

import (
	"fmt"
	"strings"

	"xmlviews/internal/xmltree"
)

// RootID is the summary node id of the document root path.
const RootID = 0

// Node is one summary node, i.e. one rooted label path.
type Node struct {
	ID       int
	Label    string
	Parent   int // parent summary node id; -1 for the root
	Children []int
	Depth    int // root has depth 1
	// Strong reports that the edge from Parent to this node is strong.
	// OneToOne implies Strong. Both are false for the root.
	Strong   bool
	OneToOne bool
	// Count is the number of document nodes on this path (0 for summaries
	// built by hand).
	Count int
	// TextBytes is the total size of the atomic values of the document
	// nodes on this path (0 for summaries built by hand). TextBytes/Count
	// is the average text size the cost model uses.
	TextBytes int64
}

// Summary is a path summary. Build one with Build or NewBuilder.
type Summary struct {
	nodes   []*Node
	byLabel map[string][]int
}

// Size returns |S|, the number of summary nodes. (A summary inside a
// Maintained may carry pruned holes; those do not count.)
func (s *Summary) Size() int {
	n := 0
	for _, nd := range s.nodes {
		if nd != nil {
			n++
		}
	}
	return n
}

// Node returns the summary node with the given id (nil for an id pruned by
// incremental maintenance).
func (s *Summary) Node(id int) *Node { return s.nodes[id] }

// NodeIDs returns all live node ids in creation (pre-)order.
func (s *Summary) NodeIDs() []int {
	ids := make([]int, 0, len(s.nodes))
	for i, nd := range s.nodes {
		if nd != nil {
			ids = append(ids, i)
		}
	}
	return ids
}

// NodesWithLabel returns the ids of summary nodes carrying the label.
func (s *Summary) NodesWithLabel(label string) []int { return s.byLabel[label] }

// Stats returns the number of strong (nS) and one-to-one (n1) edges, as
// reported in Table 1 of the paper.
func (s *Summary) Stats() (strong, oneToOne int) {
	for _, n := range s.nodes[1:] {
		if n == nil {
			continue
		}
		if n.Strong {
			strong++
		}
		if n.OneToOne {
			oneToOne++
		}
	}
	return
}

// HasStats reports whether the summary carries cardinality statistics
// (collected by Build, or parsed from annotated notation). Summaries built
// by hand have none; cost models fall back to uniform estimates then.
func (s *Summary) HasStats() bool {
	for _, n := range s.nodes {
		if n != nil && n.Count > 0 {
			return true
		}
	}
	return false
}

// DocNodes returns the total number of document nodes the statistics
// cover (0 without statistics).
func (s *Summary) DocNodes() int {
	total := 0
	for _, n := range s.nodes {
		if n != nil {
			total += n.Count
		}
	}
	return total
}

// TextBytes returns the total text size the statistics cover.
func (s *Summary) TextBytes() int64 {
	var total int64
	for _, n := range s.nodes {
		if n != nil {
			total += n.TextBytes
		}
	}
	return total
}

// AvgFanout returns the average number of children on the node's path per
// document node on its parent's path: Count(node)/Count(parent). It is 1
// for the root and for summaries without statistics (uniform fallback).
func (s *Summary) AvgFanout(id int) float64 {
	n := s.nodes[id]
	if n.Parent < 0 {
		return 1
	}
	pc := s.nodes[n.Parent].Count
	if n.Count <= 0 || pc <= 0 {
		return 1
	}
	return float64(n.Count) / float64(pc)
}

// AvgTextBytes returns the average atomic-value size of document nodes on
// the node's path (0 without statistics).
func (s *Summary) AvgTextBytes(id int) float64 {
	n := s.nodes[id]
	if n.Count <= 0 {
		return 0
	}
	return float64(n.TextBytes) / float64(n.Count)
}

// IsAncestor reports whether summary node a is a proper ancestor of b.
func (s *Summary) IsAncestor(a, b int) bool {
	if a == b {
		return false
	}
	for cur := s.nodes[b].Parent; cur >= 0; cur = s.nodes[cur].Parent {
		if cur == a {
			return true
		}
	}
	return false
}

// ChainBetween returns the summary node ids from a to b inclusive, where a
// must be b itself or an ancestor of b; ok is false otherwise.
func (s *Summary) ChainBetween(a, b int) (chain []int, ok bool) {
	for cur := b; cur >= 0; cur = s.nodes[cur].Parent {
		chain = append(chain, cur)
		if cur == a {
			// Reverse into root-to-leaf order.
			for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
				chain[i], chain[j] = chain[j], chain[i]
			}
			return chain, true
		}
	}
	return nil, false
}

// PathString returns the rooted label path of the node, e.g. "/site/regions".
func (s *Summary) PathString(id int) string {
	chain, _ := s.ChainBetween(RootID, id)
	var b strings.Builder
	for _, c := range chain {
		b.WriteByte('/')
		b.WriteString(s.nodes[c].Label)
	}
	return b.String()
}

// FindPath resolves a rooted simple path like "/site/regions/item" to a
// summary node id, or -1 if the path does not occur.
func (s *Summary) FindPath(path string) int {
	parts := strings.Split(strings.Trim(path, "/"), "/")
	if len(parts) == 0 || parts[0] != s.nodes[RootID].Label {
		return -1
	}
	cur := RootID
	for _, label := range parts[1:] {
		next := -1
		for _, c := range s.nodes[cur].Children {
			if s.nodes[c].Label == label {
				next = c
				break
			}
		}
		if next < 0 {
			return -1
		}
		cur = next
	}
	return cur
}

// Descendants returns all proper descendants of the node, in preorder.
func (s *Summary) Descendants(id int) []int {
	var out []int
	var walk func(int)
	walk = func(cur int) {
		for _, c := range s.nodes[cur].Children {
			out = append(out, c)
			walk(c)
		}
	}
	walk(id)
	return out
}

// StrongClosure returns the ids reachable from id by chains of strong edges
// going down, excluding id itself. It implements the enhanced-summary
// canonical model extension of Section 4.1.
func (s *Summary) StrongClosure(id int) []int {
	var out []int
	var walk func(int)
	walk = func(cur int) {
		for _, c := range s.nodes[cur].Children {
			if s.nodes[c].Strong {
				out = append(out, c)
				walk(c)
			}
		}
	}
	walk(id)
	return out
}

// String renders the summary in parenthesized form; strong edges are
// prefixed with '!', one-to-one edges with '='. Example: "a(!b(c) =d)".
func (s *Summary) String() string { return s.render(false) }

// StatsString renders the summary with per-node cardinality annotations:
// every node with statistics carries ':count:textbytes' after its label,
// e.g. "a:1:0(!b:40:520(c:40:80))". Parse accepts both forms, so the
// annotated text is what stores persist in their catalogs; summaries
// without statistics render identically to String.
func (s *Summary) StatsString() string { return s.render(true) }

func (s *Summary) render(stats bool) string {
	var b strings.Builder
	var write func(id int)
	write = func(id int) {
		n := s.nodes[id]
		if id != RootID {
			if n.OneToOne {
				b.WriteByte('=')
			} else if n.Strong {
				b.WriteByte('!')
			}
		}
		b.WriteString(n.Label)
		if stats && n.Count > 0 {
			fmt.Fprintf(&b, ":%d:%d", n.Count, n.TextBytes)
		}
		if len(n.Children) > 0 {
			b.WriteByte('(')
			for i, c := range n.Children {
				if i > 0 {
					b.WriteByte(' ')
				}
				write(c)
			}
			b.WriteByte(')')
		}
	}
	write(RootID)
	return b.String()
}

// Build constructs the enhanced summary of the document and annotates every
// document node's PathID with its summary node id. Strong and one-to-one
// edges are detected by counting child occurrences, the "counting nodes
// when building the summary" option of Section 4.1. The result is
// canonical: children are ordered by label and ids assigned in preorder of
// that shape, so two documents with the same path statistics render to the
// same text regardless of element order or update history.
func Build(doc *xmltree.Document) *Summary {
	return NewMaintained(doc).s
}

// rawBuild walks the document once, creating summary nodes in first-
// encounter order and collecting the per-edge occurrence counters that
// strong/one-to-one detection (and incremental maintenance) needs. Node
// ids are canonicalized afterwards.
type rawBuild struct {
	s          *Summary
	childIndex []map[string]int
	// withChild[cid] is the number of document nodes on cid's parent path
	// with at least one child on cid; withMany[cid] the number with more
	// than one.
	withChild map[int]int
	withMany  map[int]int
}

func buildRaw(doc *xmltree.Document) *rawBuild {
	r := &rawBuild{
		s:         &Summary{byLabel: map[string][]int{}},
		withChild: map[int]int{},
		withMany:  map[int]int{},
	}
	root := &Node{ID: 0, Label: doc.Root.Label, Parent: -1, Depth: 1}
	r.s.nodes = append(r.s.nodes, root)
	r.s.byLabel[root.Label] = append(r.s.byLabel[root.Label], 0)
	r.childIndex = []map[string]int{{}}

	var visit func(n *xmltree.Node, sid int)
	visit = func(n *xmltree.Node, sid int) {
		n.PathID = sid
		r.s.nodes[sid].Count++
		r.s.nodes[sid].TextBytes += int64(len(n.Value))
		perChild := map[int]int{}
		for _, c := range n.Children {
			cid, ok := r.childIndex[sid][c.Label]
			if !ok {
				cid = len(r.s.nodes)
				cn := &Node{ID: cid, Label: c.Label, Parent: sid, Depth: r.s.nodes[sid].Depth + 1}
				r.s.nodes = append(r.s.nodes, cn)
				r.childIndex = append(r.childIndex, map[string]int{})
				r.childIndex[sid][c.Label] = cid
				r.s.nodes[sid].Children = append(r.s.nodes[sid].Children, cid)
				r.s.byLabel[c.Label] = append(r.s.byLabel[c.Label], cid)
			}
			perChild[cid]++
			visit(c, cid)
		}
		for cid, count := range perChild {
			r.withChild[cid]++
			if count > 1 {
				r.withMany[cid]++
			}
		}
	}
	visit(doc.Root, 0)

	for _, n := range r.s.nodes[1:] {
		parentCount := r.s.nodes[n.Parent].Count
		if r.withChild[n.ID] == parentCount {
			n.Strong = true
			if r.withMany[n.ID] == 0 {
				n.OneToOne = true
			}
		}
	}
	return r
}

// Annotate maps this summary onto another document, setting every node's
// PathID. It returns an error if the document contains a path absent from
// the summary (the document does not conform).
func (s *Summary) Annotate(doc *xmltree.Document) error {
	if doc.Root.Label != s.nodes[RootID].Label {
		return fmt.Errorf("summary: root label %q does not match summary root %q", doc.Root.Label, s.nodes[RootID].Label)
	}
	var visit func(n *xmltree.Node, sid int) error
	visit = func(n *xmltree.Node, sid int) error {
		n.PathID = sid
		for _, c := range n.Children {
			cid := -1
			for _, sc := range s.nodes[sid].Children {
				if s.nodes[sc].Label == c.Label {
					cid = sc
					break
				}
			}
			if cid < 0 {
				return fmt.Errorf("summary: path %s/%s not in summary", s.PathString(sid), c.Label)
			}
			if err := visit(c, cid); err != nil {
				return err
			}
		}
		return nil
	}
	return visit(doc.Root, RootID)
}

// Conforms reports whether S(doc) equals this summary exactly (the paper's
// S |= d) and, for enhanced summaries, whether the document respects every
// strong and one-to-one constraint.
func (s *Summary) Conforms(doc *xmltree.Document) bool {
	other := Build(doc)
	if len(s.nodes) != len(other.nodes) {
		return false
	}
	// Node ids may differ if sibling paths were first encountered in a
	// different order, so compare by path string. The rebuilt summary
	// carries the document's actual strong/one-to-one edges; every
	// constraint declared here must hold there.
	byPath := make(map[string]*Node, len(other.nodes))
	for _, n := range other.nodes {
		byPath[other.PathString(n.ID)] = n
	}
	for _, n := range s.nodes {
		on, ok := byPath[s.PathString(n.ID)]
		if !ok {
			return false
		}
		if n.Strong && !on.Strong {
			return false
		}
		if n.OneToOne && !on.OneToOne {
			return false
		}
	}
	return true
}
