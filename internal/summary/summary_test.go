package summary

import (
	"testing"

	"xmlviews/internal/xmltree"
)

// The document of Figure 2 and its summary of Figure 3 (left).
const fig2Doc = `a(b "1" c(b "2" d(e "3")) d "4" (c(b "5" d "6" (b e "6"))) b(c(d "6")))`

func fig3Summary(t *testing.T) (*xmltree.Document, *Summary) {
	t.Helper()
	doc, err := xmltree.ParseParen(fig2Doc)
	if err != nil {
		t.Fatal(err)
	}
	return doc, Build(doc)
}

func TestBuildFigure3(t *testing.T) {
	doc, s := fig3Summary(t)
	// Figure 3's summary: a(b(c(d)) c(b d(b e)) d(e... )) — 7 nodes in the
	// paper numbered 1..7: a, b, c(under a), b(under c), d(under c), b(under d), e(under d).
	// Our document also has /a/b/c/d and /a/d/c/... so sizes differ; check
	// the invariant properties instead of exact shape.
	for _, n := range doc.Nodes() {
		if n.PathID < 0 {
			t.Fatalf("node %s not annotated", n.Path())
		}
		if got := s.PathString(n.PathID); got != n.Path() {
			t.Fatalf("PathID mismatch for %s: summary says %s", n.Path(), got)
		}
	}
	// Distinct paths in the document == summary size.
	paths := map[string]bool{}
	for _, n := range doc.Nodes() {
		paths[n.Path()] = true
	}
	if len(paths) != s.Size() {
		t.Fatalf("summary size %d != distinct paths %d", s.Size(), len(paths))
	}
}

func TestSamePathSameNode(t *testing.T) {
	doc, s := fig3Summary(t)
	byPath := map[string]int{}
	for _, n := range doc.Nodes() {
		if prev, ok := byPath[n.Path()]; ok && prev != n.PathID {
			t.Fatalf("same path %s mapped to summary nodes %d and %d", n.Path(), prev, n.PathID)
		}
		byPath[n.Path()] = n.PathID
	}
	_ = s
}

func TestFindPathAndChain(t *testing.T) {
	doc := xmltree.MustParseParen(`site(regions(item(name description(parlist))))`)
	s := Build(doc)
	id := s.FindPath("/site/regions/item/description")
	if id < 0 {
		t.Fatal("FindPath failed")
	}
	if got := s.PathString(id); got != "/site/regions/item/description" {
		t.Fatalf("PathString = %s", got)
	}
	if s.FindPath("/site/nope") != -1 {
		t.Fatal("missing path should be -1")
	}
	if s.FindPath("/wrong") != -1 {
		t.Fatal("wrong root should be -1")
	}
	root := s.FindPath("/site")
	chain, ok := s.ChainBetween(root, id)
	if !ok || len(chain) != 4 {
		t.Fatalf("ChainBetween = %v, %v", chain, ok)
	}
	if !s.IsAncestor(root, id) || s.IsAncestor(id, root) || s.IsAncestor(id, id) {
		t.Fatal("IsAncestor wrong")
	}
	if _, ok := s.ChainBetween(id, root); ok {
		t.Fatal("reversed chain should fail")
	}
}

func TestStrongAndOneToOneDetection(t *testing.T) {
	// Every item has exactly one name (one-to-one), every item has >=1
	// bid but sometimes several (strong, not one-to-one), and only some
	// items have a mail (neither).
	doc := xmltree.MustParseParen(`site(
		item(name "a" bid "1" bid "2" mail)
		item(name "b" bid "3")
		item(name "c" bid "4" bid "5"))`)
	s := Build(doc)
	name := s.Node(s.FindPath("/site/item/name"))
	bid := s.Node(s.FindPath("/site/item/bid"))
	mail := s.Node(s.FindPath("/site/item/mail"))
	item := s.Node(s.FindPath("/site/item"))
	if !name.OneToOne || !name.Strong {
		t.Errorf("name should be one-to-one: %+v", name)
	}
	if !bid.Strong || bid.OneToOne {
		t.Errorf("bid should be strong but not one-to-one: %+v", bid)
	}
	if mail.Strong || mail.OneToOne {
		t.Errorf("mail should be neither: %+v", mail)
	}
	if !item.Strong {
		t.Errorf("item occurs under every site: %+v", item)
	}
	ns, n1 := s.Stats()
	if ns != 3 || n1 != 1 {
		t.Errorf("Stats = %d,%d; want 3,1", ns, n1)
	}
	if item.Count != 3 || name.Count != 3 || bid.Count != 5 {
		t.Errorf("counts wrong: item=%d name=%d bid=%d", item.Count, name.Count, bid.Count)
	}
}

func TestStrongClosure(t *testing.T) {
	// Figure 8's enhanced summary: a(b(!c(!b d) e) !f).
	s := MustParse("a(b(!c(!b d) e) !f)")
	c := s.FindPath("/a/b/c")
	closure := s.StrongClosure(c)
	if len(closure) != 1 || s.PathString(closure[0]) != "/a/b/c/b" {
		t.Fatalf("StrongClosure(c) = %v", closure)
	}
	root := s.StrongClosure(RootID)
	if len(root) != 1 || s.PathString(root[0]) != "/a/f" {
		t.Fatalf("StrongClosure(root) = %v", root)
	}
	b := s.FindPath("/a/b")
	bc := s.StrongClosure(b)
	if len(bc) != 2 {
		t.Fatalf("StrongClosure(b) = %v, want c and its strong b child", bc)
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	src := "a(b(!c(=b d) e) !f)"
	s := MustParse(src)
	if got := s.String(); got != "a(b(!c(=b d) e) !f)" {
		t.Fatalf("String = %q", got)
	}
	s2 := MustParse(s.String())
	if s2.String() != s.String() {
		t.Fatal("round trip failed")
	}
	if _, err := Parse("a(b"); err == nil {
		t.Error("unbalanced parse should fail")
	}
	if _, err := Parse(""); err == nil {
		t.Error("empty parse should fail")
	}
	if _, err := Parse("a(b) c"); err == nil {
		t.Error("trailing input should fail")
	}
}

func TestAnnotateAndConforms(t *testing.T) {
	train := xmltree.MustParseParen(`a(b(c) b(c d))`)
	s := Build(train)
	ok := xmltree.MustParseParen(`a(b(d c))`)
	if err := s.Annotate(ok); err != nil {
		t.Fatalf("Annotate: %v", err)
	}
	if ok.Root.Children[0].Children[1].PathID != s.FindPath("/a/b/c") {
		t.Fatal("annotation ids wrong")
	}
	bad := xmltree.MustParseParen(`a(b(z))`)
	if err := s.Annotate(bad); err == nil {
		t.Fatal("Annotate should fail on unknown path")
	}
	if !s.Conforms(train) {
		t.Fatal("document should conform to its own summary")
	}
	if s.Conforms(xmltree.MustParseParen(`a(b(c))`)) {
		t.Fatal("smaller summary should not conform (missing path d)")
	}
	// A document violating a strong constraint: in train every b has a c.
	if s.Conforms(xmltree.MustParseParen(`a(b(d) b(c d))`)) {
		t.Fatal("strong-edge violation should fail Conforms")
	}
}

func TestNodesWithLabelAndDescendants(t *testing.T) {
	s := MustParse("a(b(c(b)) c)")
	if got := len(s.NodesWithLabel("b")); got != 2 {
		t.Fatalf("b occurs on %d paths, want 2", got)
	}
	if got := len(s.NodesWithLabel("c")); got != 2 {
		t.Fatalf("c occurs on %d paths, want 2", got)
	}
	if got := len(s.Descendants(RootID)); got != s.Size()-1 {
		t.Fatalf("Descendants(root) = %d, want %d", got, s.Size()-1)
	}
	b := s.FindPath("/a/b")
	if got := len(s.Descendants(b)); got != 2 {
		t.Fatalf("Descendants(b) = %d, want 2", got)
	}
}

func TestBuilderPanics(t *testing.T) {
	b := NewBuilder("a")
	b.Child(0, "x", false, false)
	assertPanics(t, func() { b.Child(0, "x", false, false) }, "duplicate child")
	assertPanics(t, func() { b.Child(42, "y", false, false) }, "invalid parent")
}

func assertPanics(t *testing.T, fn func(), what string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}
