package view_test

import (
	"path/filepath"
	"testing"

	"xmlviews/internal/core"
	"xmlviews/internal/datagen"
	"xmlviews/internal/nrel"
	"xmlviews/internal/store"
	"xmlviews/internal/view"
	"xmlviews/internal/xmltree"
)

func benchDocAndViews() (*xmltree.Document, []*core.View) {
	doc := datagen.XMark(40, 1)
	views := []*core.View{
		mkView("vitem", `site(//item[id](/name[v]))`),
		mkView("vprice", `site(//price[id,v])`),
		mkView("vperson", `site(//person[id,c])`),
	}
	return doc, views
}

// BenchmarkStoreOpen compares cold store startup: loading persisted
// segments from disk (the xvserve path) versus re-materializing every
// extent from the parsed document (the seed behaviour).
func BenchmarkStoreOpen(b *testing.B) {
	doc, views := benchDocAndViews()
	dir := b.TempDir()
	if _, err := view.BuildStore(dir, doc, views); err != nil {
		b.Fatal(err)
	}
	b.Run("disk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := view.OpenStore(dir, views); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rematerialize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			view.NewStore(doc, views)
		}
	})
}

// BenchmarkSegmentScan measures a full scan of one persisted extent (codec
// decode plus a pass over every row) versus evaluating the view's pattern
// over the document.
func BenchmarkSegmentScan(b *testing.B) {
	doc, _ := benchDocAndViews()
	v := mkView("vprice", `site(//price[id,v])`)
	dir := b.TempDir()
	cat, err := view.BuildStore(dir, doc, []*core.View{v})
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(dir, cat.Views[0].Segment)
	want := cat.Views[0].Rows
	b.Run("segment", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows := 0
			if err := store.Scan(path, func(cols []string, row nrel.Tuple) error {
				rows++
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			if rows != want {
				b.Fatalf("scanned %d rows, want %d", rows, want)
			}
		}
	})
	b.Run("evaluate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if n := view.MaterializeFlat(v, doc).Len(); n != want {
				b.Fatalf("materialized %d rows, want %d", n, want)
			}
		}
	})
}
