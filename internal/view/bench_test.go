package view_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"xmlviews/internal/core"
	"xmlviews/internal/datagen"
	"xmlviews/internal/nodeid"
	"xmlviews/internal/nrel"
	"xmlviews/internal/store"
	"xmlviews/internal/summary"
	"xmlviews/internal/view"
	"xmlviews/internal/xmltree"
)

func benchDocAndViews() (*xmltree.Document, []*core.View) {
	return benchDocAndViewsAt(40)
}

func benchDocAndViewsAt(scale int) (*xmltree.Document, []*core.View) {
	doc := datagen.XMark(scale, 1)
	views := []*core.View{
		mkView("vitem", `site(//item[id](/name[v]))`),
		mkView("vprice", `site(//price[id,v])`),
		mkView("vperson", `site(//person[id,c])`),
	}
	return doc, views
}

// BenchmarkStoreOpen compares cold store startup: loading persisted
// segments from disk (the xvserve path) versus re-materializing every
// extent from the parsed document (the seed behaviour).
func BenchmarkStoreOpen(b *testing.B) {
	doc, views := benchDocAndViews()
	dir := b.TempDir()
	if _, err := view.BuildStore(dir, doc, views); err != nil {
		b.Fatal(err)
	}
	b.Run("disk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := view.OpenStore(dir, views); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rematerialize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			view.NewStore(doc, views)
		}
	})
}

// BenchmarkSegmentScan measures a full scan of one persisted extent (codec
// decode plus a pass over every row) versus evaluating the view's pattern
// over the document.
func BenchmarkSegmentScan(b *testing.B) {
	doc, _ := benchDocAndViews()
	v := mkView("vprice", `site(//price[id,v])`)
	dir := b.TempDir()
	cat, err := view.BuildStore(dir, doc, []*core.View{v})
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(dir, cat.Views[0].Segment)
	want := cat.Views[0].Rows
	b.Run("segment", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows := 0
			if err := store.Scan(path, func(cols []string, row nrel.Tuple) error {
				rows++
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			if rows != want {
				b.Fatalf("scanned %d rows, want %d", rows, want)
			}
		}
	})
	b.Run("evaluate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if n := view.MaterializeFlat(v, doc).Len(); n != want {
				b.Fatalf("materialized %d rows, want %d", n, want)
			}
		}
	})
}

// BenchmarkMaintainUpdate compares maintaining a store through one
// settext batch (relevance mapping + incremental summary maintenance +
// scoped extent diffing) against what a refresh costs without the engine:
// rebuilding the summary and re-materializing every extent — at two
// document scales, demonstrating that per-batch maintenance cost is
// roughly flat in document size while the rebuild grows linearly. The
// irrelevance filter prunes across views (only the price view is
// re-examined) and the scoped diff prunes within the extent (only the
// retexted price's item subtree is re-evaluated).
func BenchmarkMaintainUpdate(b *testing.B) {
	for _, scale := range []int{10, 40} {
		doc, views := benchDocAndViewsAt(scale)
		views = append(views,
			mkView("vmail", `site(//mail[id](/from[v]))`),
			mkView("vcat", `site(/categories(/category[id](/name[v])))`),
			mkView("vbidder", `site(//bidder[id](/increase[v]))`),
			mkView("vseller", `site(//seller[id,v])`),
			mkView("vkeyword", `site(//keyword[id,v])`),
		)
		st := view.NewStore(doc, views)
		var target nodeid.ID
		doc.Root.Walk(func(n *xmltree.Node) bool {
			if target == nil && n.Label == "price" {
				target = n.ID
			}
			return target == nil
		})
		if target == nil {
			b.Fatal("no price node")
		}
		// Warm the store (first batch sorts the extents and builds the
		// maintained summary once; steady state is what a daemon sees).
		if _, err := st.ApplyUpdates([]xmltree.Update{
			{Kind: xmltree.UpdateSetValue, Target: target, Value: "0.00"},
		}); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("maintain/xmark%d", scale), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := st.ApplyUpdates([]xmltree.Update{
					{Kind: xmltree.UpdateSetValue, Target: target, Value: fmt.Sprintf("%d.00", i)},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("rebuild/xmark%d", scale), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				summary.Build(doc)
				view.NewStore(doc, views)
			}
		})
	}
}
