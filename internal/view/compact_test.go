package view

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xmlviews/internal/core"
	"xmlviews/internal/maintain"
	"xmlviews/internal/pattern"
	"xmlviews/internal/store"
	"xmlviews/internal/xmltree"
)

// TestCompactionReclaimsFiles: compaction must write a fresh base segment,
// remove the superseded base and delta files after the catalog is durable,
// and leave a store that reopens with identical extents.
func TestCompactionReclaimsFiles(t *testing.T) {
	dir := t.TempDir()
	doc := xmltree.MustParseParen(`site(item(name "pen") item(name "ink"))`)
	views := []*core.View{
		{Name: "v1", Pattern: pattern.MustParse(`site(/item[id](/name[v]))`), DerivableParentIDs: true},
	}
	if _, err := BuildStore(dir, doc, views); err != nil {
		t.Fatal(err)
	}
	for i, upd := range []string{
		`[{"op":"insert","parent":"1","subtree":"item(name \"dry\")"}]`,
		`[{"op":"settext","target":"1.1.1","value":"quill"}]`,
	} {
		ups, err := maintain.ParseUpdates([]byte(upd))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := UpdateStore(dir, ups); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	preCat, err := store.OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	oldBase := preCat.Views[0].Segment
	var oldDeltas []string
	for _, d := range preCat.Views[0].Deltas {
		oldDeltas = append(oldDeltas, d.Segment)
	}
	if len(oldDeltas) != 2 {
		t.Fatalf("expected 2 deltas before compaction, have %v", oldDeltas)
	}
	_, preStore, err := OpenUpdatableStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := preStore.Relation(views[0]).Sorted().String()

	res, err := CompactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Folded != 2 || res.FilesRemoved != 3 || res.BytesReclaimed <= 0 {
		t.Fatalf("unexpected compaction result: %+v", res)
	}
	for _, gone := range append(oldDeltas, oldBase) {
		if _, err := os.Stat(filepath.Join(dir, gone)); !os.IsNotExist(err) {
			t.Fatalf("superseded file %s still on disk (err=%v)", gone, err)
		}
	}
	cat, err := store.OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if seg := cat.Views[0].Segment; !strings.HasPrefix(seg, "seg-0000.c") || seg == oldBase {
		t.Fatalf("base segment not renamed by compaction: %s", seg)
	}
	if cat.Epoch != 2 || len(cat.Views[0].Deltas) != 0 {
		t.Fatalf("catalog not compacted: epoch %d, %d deltas", cat.Epoch, len(cat.Views[0].Deltas))
	}
	_, st, err := OpenUpdatableStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Relation(views[0]).Sorted().String(); got != want {
		t.Fatalf("compaction changed the extent:\n%s\nwant:\n%s", got, want)
	}

	// A second compaction is a no-op and must not touch the new base.
	res2, err := CompactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Folded != 0 || res2.FilesRemoved != 0 {
		t.Fatalf("idle compaction did work: %+v", res2)
	}

	// The compacted store keeps taking updates, with delta names derived
	// from the new base stem.
	ups, err := maintain.ParseUpdates([]byte(`[{"op":"settext","target":"1.1.1","value":"nib"}]`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UpdateStore(dir, ups); err != nil {
		t.Fatal(err)
	}
	cat3, err := store.OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cat3.Views[0].Deltas) != 1 || !strings.Contains(cat3.Views[0].Deltas[0].Segment, ".d0003.") {
		t.Fatalf("post-compaction delta chain wrong: %+v", cat3.Views[0].Deltas)
	}
}
