package view

import (
	"fmt"
	"os"
	"path/filepath"

	"xmlviews/internal/core"
	"xmlviews/internal/maintain"
	"xmlviews/internal/nrel"
	"xmlviews/internal/pattern"
	"xmlviews/internal/store"
	"xmlviews/internal/summary"
	"xmlviews/internal/xmltree"
)

// DocSegmentName is the file the source document is persisted under,
// making the store updatable (see UpdateStore).
const DocSegmentName = "document.xvt"

// BuildStore materializes every view over the document once and persists
// the extents as columnar segments plus a catalog manifest in dir (created
// if needed). Later runs serve the views with OpenStore, never touching
// the document again. The document's summary is built (annotating the
// document, as pattern evaluation requires) and recorded in the catalog in
// parseable notation. The document itself is persisted too (compressed by
// the segment tree codec), so the store can be maintained through updates
// later; the store opens and serves without ever reading it back unless
// updates arrive.
func BuildStore(dir string, doc *xmltree.Document, views []*core.View) (*store.Catalog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// The catalog records the summary with its cardinality statistics
	// (StatsString annotations), so a serving daemon can cost rewritings
	// without the document; Parse accepts either form, and stores written
	// without statistics still open (the cost model then falls back to
	// uniform estimates).
	s := summary.Build(doc)
	cat := &store.Catalog{Document: doc.Name, Summary: s.StatsString(), DocSegment: DocSegmentName}
	for i, v := range views {
		if cat.Entry(v.Name) != nil {
			return nil, fmt.Errorf("view: duplicate view name %q", v.Name)
		}
		rel := MaterializeFlat(v, doc)
		seg := fmt.Sprintf("seg-%04d.xvs", i)
		n, err := store.WriteFile(filepath.Join(dir, seg), rel)
		if err != nil {
			return nil, fmt.Errorf("view: writing segment for %q: %w", v.Name, err)
		}
		cat.Views = append(cat.Views, store.Entry{
			Name:    v.Name,
			Pattern: v.Pattern.String(),
			Columns: append([]string(nil), rel.Cols...),
			Rows:    rel.Len(),
			Bytes:   n,
			Segment: seg,
		})
	}
	if _, err := store.WriteDocumentFile(filepath.Join(dir, DocSegmentName), doc); err != nil {
		return nil, fmt.Errorf("view: persisting document: %w", err)
	}
	if err := store.WriteCatalog(dir, cat); err != nil {
		return nil, err
	}
	return cat, nil
}

// OpenStore loads the named views' extents from a store directory built by
// BuildStore. Each view's definition is checked against the catalog's
// recorded pattern text, and every segment block is CRC-verified at load.
// The returned store carries no document: queries are answered purely from
// the persisted extents.
func OpenStore(dir string, views []*core.View) (*Store, error) {
	cat, err := store.OpenCatalog(dir)
	if err != nil {
		return nil, err
	}
	return OpenStoreWithCatalog(dir, cat, views)
}

// OpenStoreWithCatalog is OpenStore for callers that already hold the
// directory's catalog (e.g. a serving daemon that also needs the summary).
// Each extent is its base segment with the entry's delta chain replayed
// over it, oldest first.
func OpenStoreWithCatalog(dir string, cat *store.Catalog, views []*core.View) (*Store, error) {
	st := &Store{views: views, blocks: newBlockCache(),
		cur: &extentVersion{epoch: cat.Epoch, rels: map[string]*nrel.Relation{}, prepared: map[string]*nrel.Relation{}}}
	for _, v := range views {
		e := cat.Entry(v.Name)
		if e == nil {
			return nil, fmt.Errorf("view: %q not in catalog %s", v.Name, dir)
		}
		if got := v.Pattern.String(); got != e.Pattern {
			return nil, fmt.Errorf("view: definition of %q does not match catalog (have %s, catalog has %s); rebuild the store", v.Name, got, e.Pattern)
		}
		rel, zones, err := store.ReadFileZones(filepath.Join(dir, e.Segment))
		if err != nil {
			return nil, err
		}
		if zones != nil && len(e.Deltas) == 0 {
			// The extent keeps the segment's row order, so the persisted
			// zone maps describe it exactly; replayed deltas reorder rows
			// and void them (Blocks recomputes zones in that case).
			if st.cur.zoneSeeds == nil {
				st.cur.zoneSeeds = map[string]*store.ZoneMap{}
			}
			st.cur.zoneSeeds[v.Name] = zones
		}
		for _, d := range e.Deltas {
			adds, dels, err := store.ReadDeltaFile(filepath.Join(dir, d.Segment))
			if err != nil {
				return nil, err
			}
			if adds.Len() != d.Adds || dels.Len() != d.Dels {
				return nil, fmt.Errorf("view: delta %s has %d/%d tuples, catalog says %d/%d",
					d.Segment, adds.Len(), dels.Len(), d.Adds, d.Dels)
			}
			rel = maintain.FoldDelta(rel, adds, dels)
		}
		if rel.Len() != e.Rows {
			return nil, fmt.Errorf("view: extent %q has %d rows after %d delta(s), catalog says %d",
				v.Name, rel.Len(), len(e.Deltas), e.Rows)
		}
		st.cur.rels[v.Name] = rel
	}
	return st, nil
}

// ViewsFromCatalog reconstructs view definitions from a catalog's recorded
// pattern texts (with derivable parent IDs: extents store Dewey IDs).
func ViewsFromCatalog(cat *store.Catalog) ([]*core.View, error) {
	views := make([]*core.View, 0, len(cat.Views))
	for _, e := range cat.Views {
		p, err := pattern.Parse(e.Pattern)
		if err != nil {
			return nil, fmt.Errorf("view: catalog view %q pattern does not parse: %w", e.Name, err)
		}
		views = append(views, &core.View{Name: e.Name, Pattern: p, DerivableParentIDs: true})
	}
	return views, nil
}
