package view

import (
	"fmt"
	"os"
	"path/filepath"

	"xmlviews/internal/core"
	"xmlviews/internal/nrel"
	"xmlviews/internal/store"
	"xmlviews/internal/summary"
	"xmlviews/internal/xmltree"
)

// BuildStore materializes every view over the document once and persists
// the extents as columnar segments plus a catalog manifest in dir (created
// if needed). Later runs serve the views with OpenStore, never touching
// the document again. The document's summary is built (annotating the
// document, as pattern evaluation requires) and recorded in the catalog in
// parseable notation.
func BuildStore(dir string, doc *xmltree.Document, views []*core.View) (*store.Catalog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := summary.Build(doc)
	cat := &store.Catalog{Document: doc.Name, Summary: s.String()}
	for i, v := range views {
		if cat.Entry(v.Name) != nil {
			return nil, fmt.Errorf("view: duplicate view name %q", v.Name)
		}
		rel := MaterializeFlat(v, doc)
		seg := fmt.Sprintf("seg-%04d.xvs", i)
		n, err := store.WriteFile(filepath.Join(dir, seg), rel)
		if err != nil {
			return nil, fmt.Errorf("view: writing segment for %q: %w", v.Name, err)
		}
		cat.Views = append(cat.Views, store.Entry{
			Name:    v.Name,
			Pattern: v.Pattern.String(),
			Columns: append([]string(nil), rel.Cols...),
			Rows:    rel.Len(),
			Bytes:   n,
			Segment: seg,
		})
	}
	if err := store.WriteCatalog(dir, cat); err != nil {
		return nil, err
	}
	return cat, nil
}

// OpenStore loads the named views' extents from a store directory built by
// BuildStore. Each view's definition is checked against the catalog's
// recorded pattern text, and every segment block is CRC-verified at load.
// The returned store carries no document: queries are answered purely from
// the persisted extents.
func OpenStore(dir string, views []*core.View) (*Store, error) {
	cat, err := store.OpenCatalog(dir)
	if err != nil {
		return nil, err
	}
	return OpenStoreWithCatalog(dir, cat, views)
}

// OpenStoreWithCatalog is OpenStore for callers that already hold the
// directory's catalog (e.g. a serving daemon that also needs the summary).
func OpenStoreWithCatalog(dir string, cat *store.Catalog, views []*core.View) (*Store, error) {
	st := &Store{rels: map[string]*nrel.Relation{}, prepared: map[string]*nrel.Relation{}}
	for _, v := range views {
		e := cat.Entry(v.Name)
		if e == nil {
			return nil, fmt.Errorf("view: %q not in catalog %s", v.Name, dir)
		}
		if got := v.Pattern.String(); got != e.Pattern {
			return nil, fmt.Errorf("view: definition of %q does not match catalog (have %s, catalog has %s); rebuild the store", v.Name, got, e.Pattern)
		}
		rel, err := store.ReadFile(filepath.Join(dir, e.Segment))
		if err != nil {
			return nil, err
		}
		if rel.Len() != e.Rows {
			return nil, fmt.Errorf("view: segment %s has %d rows, catalog says %d", e.Segment, rel.Len(), e.Rows)
		}
		st.rels[v.Name] = rel
	}
	return st, nil
}
