package view_test

import (
	"strings"
	"testing"

	"xmlviews/internal/algebra"
	"xmlviews/internal/core"
	"xmlviews/internal/pattern"
	"xmlviews/internal/store"
	"xmlviews/internal/summary"
	"xmlviews/internal/view"
	"xmlviews/internal/xmltree"
)

func mkView(name, pat string) *core.View {
	return &core.View{Name: name, Pattern: pattern.MustParse(pat), DerivableParentIDs: true}
}

// checkDiskParity is the PR's acceptance scenario: build a store directory
// from the document, reopen it without the document, rewrite the query
// against the catalog's summary, and check every plan's results against
// the in-memory NewStore path.
func checkDiskParity(t *testing.T, docSrc, qSrc string, views ...*core.View) {
	t.Helper()
	dir := t.TempDir()
	doc := xmltree.MustParseParen(docSrc)
	cat, err := view.BuildStore(dir, doc, views)
	if err != nil {
		t.Fatalf("BuildStore: %v", err)
	}
	if len(cat.Views) != len(views) {
		t.Fatalf("catalog has %d views, want %d", len(cat.Views), len(views))
	}

	// The serving side: only the directory contents, never the document.
	cat2, err := store.OpenCatalog(dir)
	if err != nil {
		t.Fatalf("OpenCatalog: %v", err)
	}
	s, err := summary.Parse(cat2.Summary)
	if err != nil {
		t.Fatalf("catalog summary does not parse: %v", err)
	}
	diskSt, err := view.OpenStore(dir, views)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	if diskSt.Document() != nil {
		t.Fatal("disk-backed store should carry no document")
	}

	q := pattern.MustParse(qSrc)
	res, err := core.Rewrite(q, views, s, core.DefaultRewriteOptions())
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if len(res.Rewritings) == 0 {
		t.Fatalf("no rewritings for %s", qSrc)
	}
	memSt := view.NewStore(doc, views)
	for _, plan := range res.Rewritings {
		want, err := algebra.Execute(plan, memSt)
		if err != nil {
			t.Fatalf("Execute(mem, %s): %v", plan, err)
		}
		got, err := algebra.Execute(plan, diskSt)
		if err != nil {
			t.Fatalf("Execute(disk, %s): %v", plan, err)
		}
		if gotS, wantS := got.Rel.Sorted().String(), want.Rel.Sorted().String(); gotS != wantS {
			t.Errorf("plan %s: disk result differs from in-memory\n got:\n%s\nwant:\n%s", plan, gotS, wantS)
		}
	}
}

func TestOpenStoreMatchesNewStore(t *testing.T) {
	t.Run("identity", func(t *testing.T) {
		checkDiskParity(t,
			`site(item(name "pen" price "3") item(name "ink" price "7"))`,
			`site(/item[id](/name[v]))`,
			mkView("v1", `site(/item[id](/name[v]))`))
	})
	t.Run("id join", func(t *testing.T) {
		checkDiskParity(t,
			`a(b(c "1" d "x") b(c "2" d "y") b(c "3"))`,
			`a(//b[id](/c[v] /d[v]))`,
			mkView("vc", `a(//b[id](/c[v]))`),
			mkView("vd", `a(//b[id](/d[v]))`))
	})
	t.Run("virtual id", func(t *testing.T) {
		// Exercises the prepared-view rename path: the store has no
		// document, so the prepared extent must derive from the segment.
		checkDiskParity(t,
			`a(b(c "1") b(c "2"))`,
			`a(/b[id](/c[v]))`,
			mkView("vc", `a(/b(/c[id,v]))`))
	})
	t.Run("navigation in stored content", func(t *testing.T) {
		// Content (C) columns round-trip through the segment codec and the
		// executor navigates inside them.
		checkDiskParity(t,
			`a(b(d "x" d "y") b(d "z") b)`,
			`a(//b[id](/d[v]))`,
			mkView("vb", `a(//b[id,c])`))
	})
}

func TestOpenStoreRejectsChangedDefinition(t *testing.T) {
	dir := t.TempDir()
	doc := xmltree.MustParseParen(`a(b "1")`)
	if _, err := view.BuildStore(dir, doc, []*core.View{mkView("v", `a(/b[id,v])`)}); err != nil {
		t.Fatal(err)
	}
	_, err := view.OpenStore(dir, []*core.View{mkView("v", `a(/b[id])`)})
	if err == nil || !strings.Contains(err.Error(), "does not match catalog") {
		t.Fatalf("changed view definition not rejected: %v", err)
	}
	_, err = view.OpenStore(dir, []*core.View{mkView("unknown", `a(/b[id])`)})
	if err == nil || !strings.Contains(err.Error(), "not in catalog") {
		t.Fatalf("unknown view not rejected: %v", err)
	}
}

func TestBuildStoreRejectsDuplicateNames(t *testing.T) {
	doc := xmltree.MustParseParen(`a(b "1")`)
	vs := []*core.View{mkView("v", `a(/b[id])`), mkView("v", `a(/b[v])`)}
	if _, err := view.BuildStore(t.TempDir(), doc, vs); err == nil {
		t.Fatal("duplicate view names not rejected")
	}
}
