package view

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"xmlviews/internal/maintain"
	"xmlviews/internal/obs"
	"xmlviews/internal/store"
	"xmlviews/internal/summary"
	"xmlviews/internal/xmltree"
)

// ChangedView summarizes one view's delta in an applied batch.
type ChangedView struct {
	Name string `json:"name"`
	Adds int    `json:"adds"`
	Dels int    `json:"dels"`
	Rows int    `json:"rows"`
}

// UpdateResult reports what an applied (and persisted) batch did.
type UpdateResult struct {
	// Epoch is the store epoch after the batch.
	Epoch int64 `json:"epoch"`
	// Changed lists the views whose extents changed, with delta sizes.
	Changed []ChangedView `json:"changed"`
	// Skipped counts the views the relevance mapping proved unaffected.
	Skipped int `json:"skipped"`
	// Summary is the rebuilt path summary of the updated document (for
	// the serving layer's epoch-scoped caches; not serialized).
	Summary *summary.Summary `json:"-"`
}

// PersistError reports that a batch was applied to the in-memory store
// but could not be fully persisted: memory is ahead of the directory.
// The caller must not apply further batches against the directory (the
// serving layer degrades /update until restart), since a later persisted
// batch would leave a hole in the delta chains that makes the store
// refuse to reopen.
type PersistError struct{ Err error }

func (e *PersistError) Error() string {
	return "view: batch applied in memory but not persisted: " + e.Err.Error()
}
func (e *PersistError) Unwrap() error { return e.Err }

// ApplyAndPersist runs one update batch against an open store and appends
// the resulting delta segments to its directory: one delta file per
// changed view, the re-encoded document, and the catalog (new epoch,
// rebuilt summary, updated row counts) — the catalog write last and the
// catalog object mutated only after every file write succeeded, so a
// crash or I/O failure mid-persist leaves both the catalog object and
// the directory's manifest on the pre-batch state, with only
// unreferenced files behind. The store must carry its document
// (SetDocument after OpenStore, or use UpdateStore).
//
// An apply failure leaves everything untouched. A persist failure is
// returned as *PersistError together with the batch result: the
// in-memory store has advanced and the directory has not.
//
// Callers persisting to the same directory must serialize their calls;
// the serving layer and CLI both do. The annotation below makes xvlint
// enforce it: every call must come from under the serving layer's update
// lock or carry an explicit waiver.
//
//xvlint:requires(updMu)
func ApplyAndPersist(dir string, cat *store.Catalog, st *Store, updates []xmltree.Update) (*UpdateResult, error) {
	//xvlint:lockheld(updMu) annotated wrapper: every caller of ApplyAndPersist already holds or waives updMu
	return ApplyAndPersistCtx(context.Background(), dir, cat, st, updates)
}

// ApplyAndPersistCtx is ApplyAndPersist with a context. When ctx carries an
// obs.Trace, the pipeline records "apply" (in-memory maintenance, including
// the engine's diff/splice sub-spans), "persist" (delta and document file
// writes) and "catalog" (commit write) spans. The context does not cancel
// the batch: aborting between apply and catalog-write is exactly the
// memory-ahead-of-disk state PersistError exists to report, so the batch
// always runs to completion or error.
//
//xvlint:requires(updMu)
func ApplyAndPersistCtx(ctx context.Context, dir string, cat *store.Catalog, st *Store, updates []xmltree.Update) (*UpdateResult, error) {
	//xvlint:lockheld(updMu) annotated wrapper: every caller of ApplyAndPersistCtx already holds or waives updMu
	return ApplyAndPersistStaged(ctx, dir, cat, st, updates, nil)
}

// ApplyAndPersistStaged is ApplyAndPersistCtx with a visibility hook:
// onApplied (when non-nil) runs after the batch is applied to the
// in-memory store — the new extent version is installed and the result
// (epoch, per-view deltas, rebuilt summary) is complete — but before any
// file write. A serving layer uses it to swap its epoch-scoped caches the
// moment the new epoch is readable, so queries never wait out the disk
// persist; if the persist then fails, memory being ahead of disk is
// exactly the *PersistError / degraded-mode state.
//
//xvlint:requires(updMu)
func ApplyAndPersistStaged(ctx context.Context, dir string, cat *store.Catalog, st *Store, updates []xmltree.Update, onApplied func(*UpdateResult)) (*UpdateResult, error) {
	endApply := obs.StartSpan(ctx, "apply")
	batch, err := st.ApplyUpdatesCtx(ctx, updates)
	endApply()
	if err != nil {
		return nil, err
	}
	epoch := st.Epoch()
	res := &UpdateResult{Epoch: epoch, Skipped: len(batch.Skipped), Summary: batch.Summary}
	for _, d := range batch.Deltas {
		res.Changed = append(res.Changed, ChangedView{
			Name: d.View.Name, Adds: d.Adds.Len(), Dels: d.Dels.Len(), Rows: d.New.Len(),
		})
	}
	if onApplied != nil {
		onApplied(res)
	}
	endPersist := obs.StartSpan(ctx, "persist")
	// Stage: write every delta file before touching the catalog object.
	type staged struct {
		entry *store.Entry
		ref   store.DeltaRef
		rows  int
	}
	var stage []staged
	for _, d := range batch.Deltas {
		e := cat.Entry(d.View.Name)
		if e == nil {
			endPersist()
			return res, &PersistError{fmt.Errorf("changed view %q not in catalog", d.View.Name)}
		}
		base := strings.TrimSuffix(e.Segment, ".xvs")
		seg := fmt.Sprintf("%s.d%04d.xvs", base, epoch)
		n, err := store.WriteDeltaFile(filepath.Join(dir, seg), d.Adds, d.Dels)
		if err != nil {
			endPersist()
			return res, &PersistError{fmt.Errorf("writing delta for %q: %w", d.View.Name, err)}
		}
		stage = append(stage, staged{entry: e, rows: d.New.Len(),
			ref: store.DeltaRef{Segment: seg, Adds: d.Adds.Len(), Dels: d.Dels.Len(), Bytes: n, Epoch: epoch}})
	}
	docSeg := cat.DocSegment
	if docSeg == "" {
		docSeg = DocSegmentName
	}
	// The codec persists each node's PathID; incremental maintenance no
	// longer touches those, so refresh them from the batch's summary
	// before encoding (the write below walks the whole document anyway).
	if err := batch.Summary.Annotate(st.Document()); err != nil {
		endPersist()
		return res, &PersistError{fmt.Errorf("annotating document: %w", err)}
	}
	if _, err := store.WriteDocumentFile(filepath.Join(dir, docSeg), st.Document()); err != nil {
		endPersist()
		return res, &PersistError{fmt.Errorf("persisting document: %w", err)}
	}
	endPersist()
	// Commit: all files durable; mutate the catalog and write it.
	endCatalog := obs.StartSpan(ctx, "catalog")
	defer endCatalog()
	for _, s := range stage {
		s.entry.Deltas = append(s.entry.Deltas, s.ref)
		s.entry.Rows = s.rows
	}
	cat.DocSegment = docSeg
	cat.Summary = batch.Summary.StatsString()
	cat.Epoch = epoch
	if err := store.WriteCatalog(dir, cat); err != nil {
		return res, &PersistError{err}
	}
	return res, nil
}

// OpenUpdatableStore opens a store directory together with its persisted
// document, ready for ApplyAndPersist.
func OpenUpdatableStore(dir string) (*store.Catalog, *Store, error) {
	cat, err := store.OpenCatalog(dir)
	if err != nil {
		return nil, nil, err
	}
	views, err := ViewsFromCatalog(cat)
	if err != nil {
		return nil, nil, err
	}
	st, err := OpenStoreWithCatalog(dir, cat, views)
	if err != nil {
		return nil, nil, err
	}
	if cat.DocSegment == "" {
		return nil, nil, fmt.Errorf("view: store %s has no persisted document; rebuild it to make it updatable", dir)
	}
	doc, err := store.ReadDocumentFile(filepath.Join(dir, cat.DocSegment))
	if err != nil {
		return nil, nil, err
	}
	st.SetDocument(doc)
	return cat, st, nil
}

// UpdateStore applies an update batch to a store directory offline: open,
// maintain, persist. It is the engine behind `xvstore apply`.
func UpdateStore(dir string, updates []xmltree.Update) (*UpdateResult, error) {
	cat, st, err := OpenUpdatableStore(dir)
	if err != nil {
		return nil, err
	}
	//xvlint:lockheld(updMu) offline CLI path: the store was opened here, nothing else holds it
	return ApplyAndPersist(dir, cat, st, updates)
}

// CompactResult reports what a compaction did.
type CompactResult struct {
	// Folded is the number of delta segments folded into base segments.
	Folded int `json:"folded"`
	// FilesRemoved and BytesReclaimed count the superseded files (old base
	// segments and folded delta segments) actually deleted from disk after
	// the new catalog was durably written.
	FilesRemoved   int   `json:"files_removed"`
	BytesReclaimed int64 `json:"bytes_reclaimed"`
}

// CompactStore folds every entry's delta chain into a fresh base segment
// and clears the chains. Extents are unchanged (a compacted store answers
// queries identically); the epoch is preserved.
func CompactStore(dir string) (*CompactResult, error) {
	cat, err := store.OpenCatalog(dir)
	if err != nil {
		return nil, err
	}
	//xvlint:lockheld(updMu) offline CLI path: the catalog was opened here, nothing else holds it
	return CompactCatalog(dir, cat)
}

// CompactCatalog is CompactStore for callers that hold the directory's
// live catalog object (the serving daemon's online compactor must mutate
// the same catalog its update path appends to, or a later persisted batch
// would resurrect folded chains). Callers must serialize it against
// ApplyAndPersist on the same directory.
//
// Crash safety: each folded extent is written to a *new* base segment
// (named <stem>.c<epoch>.xvs), the catalog is atomically renamed into
// place last, and only then are the superseded files deleted. A crash
// before the catalog write leaves the old catalog referencing the old,
// untouched files (plus unreferenced new-base files a later compaction
// run cannot collide with, since the epoch has to advance before chains
// regrow); a crash after it leaves only removable garbage.
//
//xvlint:requires(updMu)
func CompactCatalog(dir string, cat *store.Catalog) (*CompactResult, error) {
	res := &CompactResult{}
	type obsolete struct {
		seg   string
		bytes int64
	}
	var stale []obsolete
	type commit struct {
		entry   *store.Entry
		segment string
		bytes   int64
	}
	var commits []commit
	for i := range cat.Views {
		e := &cat.Views[i]
		if len(e.Deltas) == 0 {
			continue
		}
		rel, err := store.ReadFile(filepath.Join(dir, e.Segment))
		if err != nil {
			return nil, err
		}
		for _, d := range e.Deltas {
			adds, dels, err := store.ReadDeltaFile(filepath.Join(dir, d.Segment))
			if err != nil {
				return nil, err
			}
			rel = maintain.FoldDelta(rel, adds, dels)
			stale = append(stale, obsolete{seg: d.Segment, bytes: d.Bytes})
			res.Folded++
		}
		if rel.Len() != e.Rows {
			return nil, fmt.Errorf("view: compaction of %q yields %d rows, catalog says %d", e.Name, rel.Len(), e.Rows)
		}
		seg := compactedSegmentName(e.Segment, cat.Epoch)
		n, err := store.WriteFile(filepath.Join(dir, seg), rel)
		if err != nil {
			return nil, err
		}
		stale = append(stale, obsolete{seg: e.Segment, bytes: e.Bytes})
		commits = append(commits, commit{entry: e, segment: seg, bytes: n})
	}
	if res.Folded == 0 {
		return res, nil
	}
	for _, c := range commits {
		c.entry.Segment = c.segment
		c.entry.Bytes = c.bytes
		c.entry.Deltas = nil
	}
	if err := store.WriteCatalog(dir, cat); err != nil {
		return nil, err
	}
	// The new catalog no longer references these; reclaim the space. A
	// removal failure only leaks an unreferenced file, so it is not fatal
	// and simply is not counted as reclaimed.
	for _, o := range stale {
		if err := os.Remove(filepath.Join(dir, o.seg)); err == nil {
			res.FilesRemoved++
			res.BytesReclaimed += o.bytes
		}
	}
	return res, nil
}

// compactedSegmentName derives the next base segment name from the current
// one: the stem up to the first '.' plus the compaction epoch, so repeated
// compactions do not grow the name.
func compactedSegmentName(segment string, epoch int64) string {
	stem := segment
	if i := strings.IndexByte(stem, '.'); i >= 0 {
		stem = stem[:i]
	}
	return fmt.Sprintf("%s.c%04d.xvs", stem, epoch)
}
