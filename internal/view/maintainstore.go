package view

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"xmlviews/internal/maintain"
	"xmlviews/internal/store"
	"xmlviews/internal/summary"
	"xmlviews/internal/xmltree"
)

// ChangedView summarizes one view's delta in an applied batch.
type ChangedView struct {
	Name string `json:"name"`
	Adds int    `json:"adds"`
	Dels int    `json:"dels"`
	Rows int    `json:"rows"`
}

// UpdateResult reports what an applied (and persisted) batch did.
type UpdateResult struct {
	// Epoch is the store epoch after the batch.
	Epoch int64 `json:"epoch"`
	// Changed lists the views whose extents changed, with delta sizes.
	Changed []ChangedView `json:"changed"`
	// Skipped counts the views the relevance mapping proved unaffected.
	Skipped int `json:"skipped"`
	// Summary is the rebuilt path summary of the updated document (for
	// the serving layer's epoch-scoped caches; not serialized).
	Summary *summary.Summary `json:"-"`
}

// PersistError reports that a batch was applied to the in-memory store
// but could not be fully persisted: memory is ahead of the directory.
// The caller must not apply further batches against the directory (the
// serving layer degrades /update until restart), since a later persisted
// batch would leave a hole in the delta chains that makes the store
// refuse to reopen.
type PersistError struct{ Err error }

func (e *PersistError) Error() string {
	return "view: batch applied in memory but not persisted: " + e.Err.Error()
}
func (e *PersistError) Unwrap() error { return e.Err }

// ApplyAndPersist runs one update batch against an open store and appends
// the resulting delta segments to its directory: one delta file per
// changed view, the re-encoded document, and the catalog (new epoch,
// rebuilt summary, updated row counts) — the catalog write last and the
// catalog object mutated only after every file write succeeded, so a
// crash or I/O failure mid-persist leaves both the catalog object and
// the directory's manifest on the pre-batch state, with only
// unreferenced files behind. The store must carry its document
// (SetDocument after OpenStore, or use UpdateStore).
//
// An apply failure leaves everything untouched. A persist failure is
// returned as *PersistError together with the batch result: the
// in-memory store has advanced and the directory has not.
//
// Callers persisting to the same directory must serialize their calls;
// the serving layer and CLI both do.
func ApplyAndPersist(dir string, cat *store.Catalog, st *Store, updates []xmltree.Update) (*UpdateResult, error) {
	batch, err := st.ApplyUpdates(updates)
	if err != nil {
		return nil, err
	}
	epoch := st.Epoch()
	res := &UpdateResult{Epoch: epoch, Skipped: len(batch.Skipped), Summary: batch.Summary}
	// Stage: write every delta file before touching the catalog object.
	type staged struct {
		entry *store.Entry
		ref   store.DeltaRef
		rows  int
	}
	var stage []staged
	for _, d := range batch.Deltas {
		e := cat.Entry(d.View.Name)
		if e == nil {
			return res, &PersistError{fmt.Errorf("changed view %q not in catalog", d.View.Name)}
		}
		base := strings.TrimSuffix(e.Segment, ".xvs")
		seg := fmt.Sprintf("%s.d%04d.xvs", base, epoch)
		n, err := store.WriteDeltaFile(filepath.Join(dir, seg), d.Adds, d.Dels)
		if err != nil {
			return res, &PersistError{fmt.Errorf("writing delta for %q: %w", d.View.Name, err)}
		}
		stage = append(stage, staged{entry: e, rows: d.New.Len(),
			ref: store.DeltaRef{Segment: seg, Adds: d.Adds.Len(), Dels: d.Dels.Len(), Bytes: n, Epoch: epoch}})
		res.Changed = append(res.Changed, ChangedView{
			Name: d.View.Name, Adds: d.Adds.Len(), Dels: d.Dels.Len(), Rows: d.New.Len(),
		})
	}
	docSeg := cat.DocSegment
	if docSeg == "" {
		docSeg = DocSegmentName
	}
	if _, err := store.WriteDocumentFile(filepath.Join(dir, docSeg), st.Document()); err != nil {
		return res, &PersistError{fmt.Errorf("persisting document: %w", err)}
	}
	// Commit: all files durable; mutate the catalog and write it.
	for _, s := range stage {
		s.entry.Deltas = append(s.entry.Deltas, s.ref)
		s.entry.Rows = s.rows
	}
	cat.DocSegment = docSeg
	cat.Summary = batch.Summary.StatsString()
	cat.Epoch = epoch
	if err := store.WriteCatalog(dir, cat); err != nil {
		return res, &PersistError{err}
	}
	return res, nil
}

// OpenUpdatableStore opens a store directory together with its persisted
// document, ready for ApplyAndPersist.
func OpenUpdatableStore(dir string) (*store.Catalog, *Store, error) {
	cat, err := store.OpenCatalog(dir)
	if err != nil {
		return nil, nil, err
	}
	views, err := ViewsFromCatalog(cat)
	if err != nil {
		return nil, nil, err
	}
	st, err := OpenStoreWithCatalog(dir, cat, views)
	if err != nil {
		return nil, nil, err
	}
	if cat.DocSegment == "" {
		return nil, nil, fmt.Errorf("view: store %s has no persisted document; rebuild it to make it updatable", dir)
	}
	doc, err := store.ReadDocumentFile(filepath.Join(dir, cat.DocSegment))
	if err != nil {
		return nil, nil, err
	}
	st.SetDocument(doc)
	return cat, st, nil
}

// UpdateStore applies an update batch to a store directory offline: open,
// maintain, persist. It is the engine behind `xvstore apply`.
func UpdateStore(dir string, updates []xmltree.Update) (*UpdateResult, error) {
	cat, st, err := OpenUpdatableStore(dir)
	if err != nil {
		return nil, err
	}
	return ApplyAndPersist(dir, cat, st, updates)
}

// CompactStore folds every entry's delta chain back into its base segment
// and clears the chains. Extents are unchanged (a compacted store answers
// queries identically); the epoch is preserved. Returns the number of
// delta segments folded.
func CompactStore(dir string) (int, error) {
	cat, err := store.OpenCatalog(dir)
	if err != nil {
		return 0, err
	}
	folded := 0
	var obsolete []string
	for i := range cat.Views {
		e := &cat.Views[i]
		if len(e.Deltas) == 0 {
			continue
		}
		rel, err := store.ReadFile(filepath.Join(dir, e.Segment))
		if err != nil {
			return 0, err
		}
		for _, d := range e.Deltas {
			adds, dels, err := store.ReadDeltaFile(filepath.Join(dir, d.Segment))
			if err != nil {
				return 0, err
			}
			rel = maintain.FoldDelta(rel, adds, dels)
			obsolete = append(obsolete, d.Segment)
			folded++
		}
		if rel.Len() != e.Rows {
			return 0, fmt.Errorf("view: compaction of %q yields %d rows, catalog says %d", e.Name, rel.Len(), e.Rows)
		}
		n, err := store.WriteFile(filepath.Join(dir, e.Segment), rel)
		if err != nil {
			return 0, err
		}
		e.Bytes = n
		e.Deltas = nil
	}
	if folded == 0 {
		return 0, nil
	}
	if err := store.WriteCatalog(dir, cat); err != nil {
		return 0, err
	}
	// The chain is gone from the catalog; stale files are harmless, so
	// removal failures are not fatal.
	for _, seg := range obsolete {
		_ = os.Remove(filepath.Join(dir, seg))
	}
	return folded, nil
}
