package view

import (
	"fmt"
	"sync"
	"testing"

	"xmlviews/internal/core"
	"xmlviews/internal/pattern"
	"xmlviews/internal/xmltree"
)

func mvccStore(t *testing.T) (*Store, *core.View, *xmltree.Document) {
	t.Helper()
	doc := xmltree.MustParseParen(`a(b "1")`)
	v := &core.View{Name: "v", Pattern: pattern.MustParse(`a(/b[v])`), DerivableParentIDs: true}
	return NewStore(doc, []*core.View{v}), v, doc
}

func applyOne(t *testing.T, st *Store, doc *xmltree.Document, val string) {
	t.Helper()
	if _, err := st.ApplyUpdates([]xmltree.Update{
		{Kind: xmltree.UpdateInsert, Parent: doc.Root.ID, Subtree: xmltree.MustParseParen(`b "` + val + `"`)},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMVCCPinRelease(t *testing.T) {
	st, _, doc := mvccStore(t)
	if got := st.Versions(); got != 1 {
		t.Fatalf("fresh store tracks %d versions, want 1", got)
	}
	snap := st.Snapshot()
	applyOne(t, st, doc, "2")
	// Applying the first batch installs a sorted same-epoch version and
	// then the new epoch; the snapshot pins the original.
	if got := st.Versions(); got != 2 {
		t.Fatalf("after update with pinned snapshot: %d versions, want 2", got)
	}
	snap.Release()
	if got := st.Versions(); got != 1 {
		t.Fatalf("after release: %d versions, want 1", got)
	}
	snap.Release() // idempotent
	if got := st.Versions(); got != 1 {
		t.Fatalf("double release changed version count to %d", got)
	}
}

func TestMVCCUnpinnedVersionsNotRetained(t *testing.T) {
	st, _, doc := mvccStore(t)
	for i := 0; i < 5; i++ {
		applyOne(t, st, doc, fmt.Sprintf("x%d", i))
	}
	if got := st.Versions(); got != 1 {
		t.Fatalf("no snapshots pinned, yet %d versions retained", got)
	}
	if st.Epoch() != 5 {
		t.Fatalf("epoch %d, want 5", st.Epoch())
	}
}

func TestMVCCRetentionBound(t *testing.T) {
	st, v, doc := mvccStore(t)
	st.SetMaxVersions(3)
	var snaps []*Store
	for i := 0; i < 6; i++ {
		snaps = append(snaps, st.Snapshot())
		applyOne(t, st, doc, fmt.Sprintf("y%d", i))
	}
	if got := st.Versions(); got > 3 {
		t.Fatalf("retention bound exceeded: %d versions, max 3", got)
	}
	// Force-released snapshots stay readable at their pinned epoch.
	for i, snap := range snaps {
		if got := snap.Epoch(); got != int64(i) {
			t.Fatalf("snapshot %d reports epoch %d", i, got)
		}
		if got := snap.Relation(v).Len(); got != i+1 {
			t.Fatalf("snapshot %d sees %d rows, want %d", i, got, i+1)
		}
	}
	// Releasing everything (including force-released pins) leaves the
	// live version only and never panics or underflows.
	for _, snap := range snaps {
		snap.Release()
		snap.Release()
	}
	if got := st.Versions(); got != 1 {
		t.Fatalf("after releasing all snapshots: %d versions", got)
	}
}

func TestMVCCSnapshotOfSnapshot(t *testing.T) {
	st, v, doc := mvccStore(t)
	s1 := st.Snapshot()
	s2 := s1.Snapshot()
	s1.Release()
	applyOne(t, st, doc, "2")
	if got := s2.Relation(v).Len(); got != 1 {
		t.Fatalf("re-pinned snapshot sees %d rows, want 1", got)
	}
	if got := st.Versions(); got != 2 {
		t.Fatalf("%d versions while s2 pinned, want 2", got)
	}
	s2.Release()
	if got := st.Versions(); got != 1 {
		t.Fatalf("%d versions after final release, want 1", got)
	}
}

// TestMVCCConcurrentReadersDontBlockCommit pins snapshots from reader
// goroutines while a writer applies batches; every reader must observe a
// row count consistent with its snapshot's epoch (epoch e => e+1 rows),
// and the writer must never be blocked into failure by readers.
func TestMVCCConcurrentReadersDontBlockCommit(t *testing.T) {
	st, v, doc := mvccStore(t)
	st.SetMaxVersions(4)
	const batches = 50
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := st.Snapshot()
				e := snap.Epoch()
				if got := snap.Relation(v).Len(); int64(got) != e+1 {
					t.Errorf("snapshot at epoch %d sees %d rows", e, got)
					snap.Release()
					return
				}
				snap.Release()
			}
		}()
	}
	for i := 0; i < batches; i++ {
		applyOne(t, st, doc, fmt.Sprintf("c%d", i))
		if got := st.Versions(); got > 4 {
			t.Fatalf("version bound exceeded under concurrency: %d", got)
		}
	}
	close(done)
	wg.Wait()
	if st.Epoch() != batches {
		t.Fatalf("final epoch %d, want %d", st.Epoch(), batches)
	}
}
