package view_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"xmlviews/internal/algebra"
	"xmlviews/internal/core"
	"xmlviews/internal/datagen"
	"xmlviews/internal/nodeid"
	"xmlviews/internal/pattern"
	"xmlviews/internal/summary"
	"xmlviews/internal/view"
	"xmlviews/internal/xmltree"
)

// The differential oracle: apply random update batches to a store and
// assert the maintained extents are tuple-identical to a from-scratch
// re-materialization of the updated document, across the four stored view
// shapes (identity, join pair, virtual-ID/prepared, content) plus an
// optional-edge view, and that rewritten queries answer identically on the
// maintained store and on a freshly built one.

func oracleViews() []*core.View {
	return []*core.View{
		mkView("vname", `site(//item[id](/name[v]))`),              // identity
		mkView("vloc", `site(//item[id](/location[v]))`),           // join half 1
		mkView("vquant", `site(//item[id](/quantity[v]))`),         // join half 2
		mkView("vvirt", `site(//item(/name[id,v]))`),               // virtual-ID source
		mkView("vcont", `site(//mail[id,c])`),                      // content, many summary paths
		mkView("vpcont", `site(/people(/person[id,c]))`),           // content, single path
		mkView("vopt", `site(//person[id](?/phone[v] ?/name[v]))`), // optional edges
	}
}

// oracleQueries pairs each query with the view subset that must answer it,
// exercising identity scans, ID joins, virtual-ID derivation and content
// navigation. (Content navigation is probed through the single-path
// vpcont: //mail has one summary node per XMark region, which blows up
// even the first-plan rewriting search; its extent maintenance is still
// covered by the extent-level checks on vcont.)
func oracleQueries() []struct {
	q     string
	views []string
} {
	return []struct {
		q     string
		views []string
	}{
		{`site(//item[id](/name[v]))`, []string{"vname"}},
		{`site(//item[id](/location[v] /quantity[v]))`, []string{"vloc", "vquant"}},
		{`site(//item[id](/name[v]))`, []string{"vvirt"}},             // forces the prepared/virtual-ID path
		{`site(/people(/person[id](/phone[v])))`, []string{"vpcont"}}, // forces content navigation
		{`site(//person[id](?/phone[v]))`, []string{"vopt"}},
	}
}

// updateGen builds random batches whose updates never step on a subtree an
// earlier update of the same batch deleted. In conforming mode, inserted
// subtrees and renames follow the XMark vocabulary at plausible positions,
// keeping the mutated summary close to the schema so that the rewriting
// search (whose canonical models grow with summary bushiness) stays cheap
// enough for end-to-end query checks; wild mode inserts any label anywhere
// and is used for the extent-level oracle, which needs no rewriting.
type updateGen struct {
	r          *rand.Rand
	serial     int
	conforming bool
}

var wildLabels = []string{"item", "name", "mail", "person", "phone", "location", "misc"}

var containerLabels = map[string]bool{
	"regions": true, "africa": true, "asia": true, "australia": true,
	"europe": true, "namerica": true, "samerica": true, "people": true,
}

func (g *updateGen) wildSubtree() *xmltree.Document {
	g.serial++
	d := xmltree.NewDocument(wildLabels[g.r.Intn(len(wildLabels))])
	d.Root.Value = fmt.Sprintf("g%d", g.serial)
	n := d.Root
	for depth := 0; depth < g.r.Intn(3); depth++ {
		n = n.AddChild(wildLabels[g.r.Intn(len(wildLabels))], fmt.Sprintf("g%d.%d", g.serial, depth))
		if g.r.Intn(2) == 0 {
			n.AddChild("from", "x@example.com")
		}
	}
	return d
}

// conformingInsert picks an XMark-shaped subtree and a matching parent
// label, or returns ok=false for parents it has no recipe for.
func (g *updateGen) conformingInsert(parentLabel string) (*xmltree.Document, bool) {
	g.serial++
	switch parentLabel {
	case "africa", "asia", "australia", "europe", "namerica", "samerica":
		d := xmltree.NewDocument("item")
		d.Root.AddChild("name", fmt.Sprintf("gadget %d", g.serial))
		d.Root.AddChild("location", "Freedonia")
		d.Root.AddChild("quantity", fmt.Sprintf("%d", 1+g.serial%5))
		return d, true
	case "mailbox":
		d := xmltree.NewDocument("mail")
		d.Root.AddChild("from", fmt.Sprintf("g%d@example.com", g.serial))
		d.Root.AddChild("to", "x@example.org")
		return d, true
	case "people":
		d := xmltree.NewDocument("person")
		d.Root.AddChild("name", fmt.Sprintf("Person %d", g.serial))
		if g.serial%2 == 0 {
			d.Root.AddChild("phone", fmt.Sprintf("+1 555 01%02d", g.serial%100))
		}
		return d, true
	case "item":
		d := xmltree.NewDocument("mailbox")
		m := d.Root.AddChild("mail", "")
		m.AddChild("from", fmt.Sprintf("g%d@example.com", g.serial))
		return d, true
	}
	return nil, false
}

func (g *updateGen) batch(doc *xmltree.Document) []xmltree.Update {
	nodes := doc.Nodes()
	var deleted []nodeid.ID
	gone := func(id nodeid.ID) bool {
		for _, d := range deleted {
			if d.Equal(id) || d.IsAncestorOf(id) {
				return true
			}
		}
		return false
	}
	size := 1 + g.r.Intn(3)
	var ups []xmltree.Update
	for attempts := 0; len(ups) < size && attempts < 200; attempts++ {
		n := nodes[g.r.Intn(len(nodes))]
		if gone(n.ID) {
			continue
		}
		switch g.r.Intn(5) {
		case 0, 1: // insert, biased: growth keeps documents interesting
			var sub *xmltree.Document
			if g.conforming {
				var ok bool
				if sub, ok = g.conformingInsert(n.Label); !ok {
					continue
				}
			} else {
				sub = g.wildSubtree()
			}
			var before nodeid.ID
			if len(n.Children) > 0 && g.r.Intn(2) == 0 {
				c := n.Children[g.r.Intn(len(n.Children))]
				if gone(c.ID) {
					continue
				}
				before = c.ID
			}
			ups = append(ups, xmltree.Update{Kind: xmltree.UpdateInsert, Parent: n.ID, Before: before, Subtree: sub})
		case 2:
			if n.Parent == nil {
				continue
			}
			if g.conforming && containerLabels[n.Label] {
				// Keep the document's backbone so the checked queries stay
				// satisfiable; items, persons, mails etc. remain fair game.
				continue
			}
			deleted = append(deleted, n.ID)
			ups = append(ups, xmltree.Update{Kind: xmltree.UpdateDelete, Target: n.ID})
		case 3:
			if n.Parent == nil {
				continue // keep the root label stable so views stay satisfiable
			}
			label := wildLabels[g.r.Intn(len(wildLabels))]
			if g.conforming {
				// Rename only among labels of the same stratum, so no new
				// summary paths appear above existing substructure.
				switch n.Label {
				case "location":
					label = "quantity"
				case "quantity":
					label = "location"
				case "phone", "name":
					label = "misc" + n.Label
				default:
					continue
				}
			}
			ups = append(ups, xmltree.Update{Kind: xmltree.UpdateRename, Target: n.ID, Label: label})
		default:
			g.serial++
			ups = append(ups, xmltree.Update{Kind: xmltree.UpdateSetValue, Target: n.ID, Value: fmt.Sprintf("w%d", g.serial)})
		}
	}
	return ups
}

func checkExtentsMatchRebuild(t *testing.T, st *view.Store, views []*core.View, doc *xmltree.Document, round int) {
	t.Helper()
	for _, v := range views {
		want := view.MaterializeFlat(v, doc)
		got := st.Relation(v)
		if !got.EqualAsSet(want) {
			t.Fatalf("round %d: maintained extent of %s diverges from rebuild\nmaintained:\n%s\nrebuild:\n%s",
				round, v.Name, got.Sorted(), want.Sorted())
		}
	}
}

func checkQueriesMatchRebuild(t *testing.T, st *view.Store, views []*core.View, doc *xmltree.Document, sum *summary.Summary, round int) {
	t.Helper()
	byName := map[string]*core.View{}
	for _, v := range views {
		byName[v.Name] = v
	}
	fresh := view.NewStore(doc, views)
	for _, qc := range oracleQueries() {
		var qviews []*core.View
		for _, name := range qc.views {
			qviews = append(qviews, byName[name])
		}
		q := pattern.MustParse(qc.q)
		// First plan only, like the serving daemon: the exhaustive search
		// over //-queries is exponential in summary bushiness.
		opts := core.DefaultRewriteOptions()
		opts.FirstOnly = true
		res, err := core.Rewrite(q, qviews, sum, opts)
		if errors.Is(err, core.ErrUnsatisfiable) {
			continue // both stores would answer with nothing
		}
		if err != nil {
			t.Fatalf("round %d: Rewrite(%s): %v", round, qc.q, err)
		}
		if len(res.Rewritings) == 0 {
			t.Fatalf("round %d: no rewriting for %s over %v", round, qc.q, qc.views)
		}
		for _, plan := range res.Rewritings {
			got, err := algebra.Execute(plan, st)
			if err != nil {
				t.Fatalf("round %d: Execute(maintained, %s): %v", round, plan, err)
			}
			want, err := algebra.Execute(plan, fresh)
			if err != nil {
				t.Fatalf("round %d: Execute(fresh, %s): %v", round, plan, err)
			}
			if gs, ws := got.Rel.Sorted().String(), want.Rel.Sorted().String(); gs != ws {
				t.Fatalf("round %d: plan %s answers differently on maintained store\nmaintained:\n%s\nfresh:\n%s",
					round, plan, gs, ws)
			}
		}
	}
}

// TestMaintenanceOracleMemory drives ≥100 random batches through
// Store.ApplyUpdates across several documents and seeds, with the wild
// generator (arbitrary labels anywhere), asserting extent-level parity
// with a from-scratch rebuild after every batch.
func TestMaintenanceOracleMemory(t *testing.T) {
	const seeds, batches = 6, 18 // 108 batches
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(1000 + seed))
			doc := datagen.XMark(1, seed)
			views := oracleViews()
			st := view.NewStore(doc, views)
			gen := &updateGen{r: r}
			for round := 0; round < batches; round++ {
				ups := gen.batch(doc)
				batch, err := st.ApplyUpdates(ups)
				if err != nil {
					t.Fatalf("round %d: ApplyUpdates: %v", round, err)
				}
				if st.Epoch() != int64(round+1) {
					t.Fatalf("round %d: epoch %d", round, st.Epoch())
				}
				// The incrementally maintained summary must render
				// byte-identically to a from-scratch build, statistics
				// included.
				if got, want := batch.Summary.StatsString(), summary.Build(doc).StatsString(); got != want {
					t.Fatalf("round %d: maintained summary diverged\nmaintained: %s\nrebuild:    %s", round, got, want)
				}
				checkExtentsMatchRebuild(t, st, views, doc, round)
			}
		})
	}
}

// TestMaintenanceOracleQueries drives schema-conforming batches and checks
// end-to-end query parity (rewrite + execute on the maintained store vs a
// fresh one) after every batch, covering the identity, ID-join,
// virtual-ID/prepared and content-navigation plan shapes.
func TestMaintenanceOracleQueries(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	doc := datagen.XMark(1, 3)
	views := oracleViews()
	st := view.NewStore(doc, views)
	gen := &updateGen{r: r, conforming: true}
	for round := 0; round < 8; round++ {
		ups := gen.batch(doc)
		batch, err := st.ApplyUpdates(ups)
		if err != nil {
			t.Fatalf("round %d: ApplyUpdates: %v", round, err)
		}
		if got, want := batch.Summary.StatsString(), summary.Build(doc).StatsString(); got != want {
			t.Fatalf("round %d: maintained summary diverged\nmaintained: %s\nrebuild:    %s", round, got, want)
		}
		checkExtentsMatchRebuild(t, st, views, doc, round)
		checkQueriesMatchRebuild(t, st, views, doc, batch.Summary, round)
	}
}

// TestMaintenanceOracleDisk drives batches through UpdateStore (open →
// maintain → persist delta segments) and checks that reopening — before
// and after compaction — yields extents and query results identical to a
// from-scratch rebuild of the updated document.
func TestMaintenanceOracleDisk(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(77))
	doc := datagen.XMark(1, 7)
	views := oracleViews()
	if _, err := view.BuildStore(dir, doc, views); err != nil {
		t.Fatal(err)
	}
	gen := &updateGen{r: r, conforming: true}
	const batches = 12
	for round := 0; round < batches; round++ {
		// The persisted document is authoritative; mirror it locally so the
		// generator picks valid targets.
		_, st, err := view.OpenUpdatableStore(dir)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		ups := gen.batch(st.Document())
		if _, err := view.UpdateStore(dir, ups); err != nil {
			t.Fatalf("round %d: UpdateStore: %v", round, err)
		}
	}

	// Reopen: extents must equal a rebuild of the persisted document.
	cat, st, err := view.OpenUpdatableStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Epoch != batches {
		t.Fatalf("epoch %d, want %d", cat.Epoch, batches)
	}
	latest := st.Document()
	checkExtentsMatchRebuild(t, st, views, latest, -1)
	// The persisted summary text (written from the maintained summary)
	// must equal a from-scratch build of the persisted document.
	if want := summary.Build(latest).StatsString(); cat.Summary != want {
		t.Fatalf("persisted summary diverged\ncatalog: %s\nrebuild: %s", cat.Summary, want)
	}
	sum, err := summary.Parse(cat.Summary)
	if err != nil {
		t.Fatal(err)
	}
	checkQueriesMatchRebuild(t, st, views, latest, sum, -1)
	preCompact := map[string]string{}
	for _, v := range views {
		preCompact[v.Name] = st.Relation(v).Sorted().String()
	}

	// Compact and reopen: identical answers from folded base segments.
	res, err := view.CompactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Folded == 0 {
		t.Fatal("nothing compacted after 12 batches")
	}
	if res.FilesRemoved < res.Folded || res.BytesReclaimed <= 0 {
		t.Fatalf("compaction did not reclaim superseded files: %+v", res)
	}
	cat2, st2, err := view.OpenUpdatableStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cat2.Epoch != batches {
		t.Fatalf("compaction changed epoch: %d", cat2.Epoch)
	}
	for _, e := range cat2.Views {
		if len(e.Deltas) != 0 {
			t.Fatalf("delta chain survived compaction for %s", e.Name)
		}
	}
	for _, v := range views {
		if got := st2.Relation(v).Sorted().String(); got != preCompact[v.Name] {
			t.Fatalf("compacted extent of %s differs:\n%s\nwant:\n%s", v.Name, got, preCompact[v.Name])
		}
	}
	checkQueriesMatchRebuild(t, st2, views, latest, sum, -2)
}
