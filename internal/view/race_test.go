package view

import (
	"sync"
	"testing"

	"xmlviews/internal/core"
	"xmlviews/internal/pattern"
	"xmlviews/internal/xmltree"
)

// TestStoreRelationConcurrent is the regression test for the Store data
// race: 8 goroutines hammer Relation on views that are NOT pre-materialized
// (a lazily-added base view and a prepared view), so every goroutine races
// through the materialize-on-demand path. Run with -race.
func TestStoreRelationConcurrent(t *testing.T) {
	doc := xmltree.MustParseParen(`a(b(c "1") b(c "2") b(c "3"))`)
	st := NewStore(doc, nil) // nothing pre-materialized

	lazy := &core.View{Name: "lazy", Pattern: pattern.MustParse(`a(//c[id,v])`)}
	prepared := &core.View{
		Name:          "lazy",
		Pattern:       pattern.MustParse(`a(/b[id](/c[id,v]))`),
		Stored:        pattern.MustParse(`a(/b(/c[id,v]))`),
		StoredSlotMap: []int{1},
		VirtualSlots:  map[int]core.VirtualID{0: {FromSlot: 1, Up: 1}},
	}

	const goroutines = 8
	var wg sync.WaitGroup
	rels := make([]*nrelPair, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := &nrelPair{}
			for i := 0; i < 50; i++ {
				p.base = st.Relation(lazy)
				p.prepared = st.Relation(prepared)
				if !st.Has("lazy") {
					t.Error("store lost the lazy extent")
					return
				}
			}
			rels[g] = p
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if rels[g] == nil || rels[g].base != rels[0].base || rels[g].prepared != rels[0].prepared {
			t.Fatal("goroutines observed different cached extents")
		}
	}
	if n := st.Relation(lazy).Len(); n != 3 {
		t.Fatalf("lazy extent rows = %d, want 3", n)
	}
}

type nrelPair struct {
	base, prepared any
}

// TestStorePutHasConcurrent covers the writer-side API under concurrency.
func TestStorePutHasConcurrent(t *testing.T) {
	doc := xmltree.MustParseParen(`a(b "1")`)
	st := NewStore(doc, nil)
	v := &core.View{Name: "v", Pattern: pattern.MustParse(`a(/b[id,v])`)}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				st.Put("w", st.Relation(v))
				_ = st.Has("w")
			}
		}()
	}
	wg.Wait()
	if !st.Has("w") {
		t.Fatal("Put lost")
	}
}
