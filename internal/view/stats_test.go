package view

import (
	"testing"

	"xmlviews/internal/core"
	"xmlviews/internal/maintain"
	"xmlviews/internal/pattern"
	"xmlviews/internal/store"
	"xmlviews/internal/summary"
	"xmlviews/internal/xmltree"
)

// TestCatalogStatsRoundTrip checks that the cardinality statistics
// collected at build time survive the catalog write/read cycle and match a
// fresh summary build.
func TestCatalogStatsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	doc := xmltree.MustParseParen(
		`site(item(name "pen" price "3") item(name "ink" price "7") person(name "bob"))`)
	views := []*core.View{
		{Name: "v1", Pattern: pattern.MustParse(`site(/item[id](/name[v]))`), DerivableParentIDs: true},
	}
	if _, err := BuildStore(dir, doc, views); err != nil {
		t.Fatal(err)
	}
	cat, err := store.OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := summary.Parse(cat.Summary)
	if err != nil {
		t.Fatalf("catalog summary %q does not parse: %v", cat.Summary, err)
	}
	if !sum.HasStats() {
		t.Fatalf("catalog summary lost its statistics: %q", cat.Summary)
	}
	fresh := summary.Build(doc)
	if sum.StatsString() != fresh.StatsString() {
		t.Fatalf("catalog stats %q != fresh build %q", sum.StatsString(), fresh.StatsString())
	}
	if sum.DocNodes() != 9 {
		t.Fatalf("DocNodes = %d, want 9", sum.DocNodes())
	}
}

// TestCatalogStatsRefreshedByUpdate checks that maintenance rewrites the
// annotated summary: after an update the persisted statistics reflect the
// new document.
func TestCatalogStatsRefreshedByUpdate(t *testing.T) {
	dir := t.TempDir()
	doc := xmltree.MustParseParen(`site(item(name "pen"))`)
	views := []*core.View{
		{Name: "v1", Pattern: pattern.MustParse(`site(/item[id](/name[v]))`), DerivableParentIDs: true},
	}
	if _, err := BuildStore(dir, doc, views); err != nil {
		t.Fatal(err)
	}
	updates, err := maintain.ParseUpdates([]byte(`[{"op":"insert","parent":"1","subtree":"item(name \"ink\")"}]`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UpdateStore(dir, updates); err != nil {
		t.Fatal(err)
	}
	cat, err := store.OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := summary.Parse(cat.Summary)
	if err != nil {
		t.Fatal(err)
	}
	item := sum.FindPath("/site/item")
	if item < 0 || sum.Node(item).Count != 2 {
		t.Fatalf("post-update item count = %d, want 2 (summary %q)", sum.Node(item).Count, cat.Summary)
	}
}

// TestOpenStoreWithoutStats checks the fallback: a catalog whose summary
// carries no annotations (pre-statistics store) still opens and serves.
func TestOpenStoreWithoutStats(t *testing.T) {
	dir := t.TempDir()
	doc := xmltree.MustParseParen(`site(item(name "pen"))`)
	views := []*core.View{
		{Name: "v1", Pattern: pattern.MustParse(`site(/item[id](/name[v]))`), DerivableParentIDs: true},
	}
	if _, err := BuildStore(dir, doc, views); err != nil {
		t.Fatal(err)
	}
	// Strip the annotations the way an old builder would have written it.
	cat, err := store.OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := summary.Parse(cat.Summary)
	if err != nil {
		t.Fatal(err)
	}
	cat.Summary = sum.String() // plain notation, no stats
	if err := store.WriteCatalog(dir, cat); err != nil {
		t.Fatal(err)
	}
	cat2, err := store.OpenCatalog(dir)
	if err != nil {
		t.Fatalf("stats-free catalog must open: %v", err)
	}
	sum2, err := summary.Parse(cat2.Summary)
	if err != nil {
		t.Fatal(err)
	}
	if sum2.HasStats() {
		t.Fatal("stripped summary must carry no stats")
	}
	st, err := OpenStoreWithCatalog(dir, cat2, views)
	if err != nil {
		t.Fatalf("stats-free store must open: %v", err)
	}
	if st.Relation(views[0]).Len() != 1 {
		t.Fatal("stats-free store must still serve its extent")
	}
}
