// Package view materializes tree pattern views over documents and manages
// the resulting nested tables (Figure 1(c) of the paper).
//
// Two forms are produced. The nested form is the paper's view extent: one
// table column per nested edge, ⊥ for optional non-bindings. The flat form
// unnests every table and is the substrate the algebra executor operates
// on; re-nesting happens at plan output according to the plan's nesting
// sequences.
package view

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"xmlviews/internal/core"
	"xmlviews/internal/maintain"
	"xmlviews/internal/nodeid"
	"xmlviews/internal/nrel"
	"xmlviews/internal/pattern"
	"xmlviews/internal/store"
	"xmlviews/internal/summary"
	"xmlviews/internal/xmltree"
)

// Materialize evaluates the view definition over the document and returns
// its nested extent.
func Materialize(v *core.View, doc *xmltree.Document) *nrel.Relation {
	return v.Pattern.Eval(doc)
}

// MaterializeFlat evaluates the view with nested edges flattened and
// content stored with original identifiers. Columns are named s<k>.<attr>
// for slot k (id, l, v, c). When the view carries reasoning-only virtual
// attributes (Stored != nil), only the stored pattern is evaluated and its
// columns are named after the prepared slot indexes; the executor derives
// the virtual columns.
func MaterializeFlat(v *core.View, doc *xmltree.Document) *nrel.Relation {
	pat := v.Pattern
	slotMap := func(k int) int { return k }
	if v.Stored != nil {
		pat = v.Stored
		slotMap = func(k int) int { return v.StoredSlotMap[k] }
	}
	flat := flattened(pat)
	raw := flat.Eval(doc)
	return renameToSlots(flat, raw, slotMap)
}

// MaterializeFlatScoped evaluates the witnessed scoped extent the
// maintenance engine's fast path needs: the flattened pattern is evaluated
// only on the chain and subtree of root (pattern.EvalScope), and rows are
// kept only when their witness identifier — the id column of the
// flattened pattern's witnessReturn-th return node — lies at or below
// root. See internal/maintain/scope.go for why this subset is exactly the
// extent's changeable region.
func MaterializeFlatScoped(v *core.View, doc *xmltree.Document, root nodeid.ID, witnessReturn int) *nrel.Relation {
	pat := v.Pattern
	slotMap := func(k int) int { return k }
	if v.Stored != nil {
		pat = v.Stored
		slotMap = func(k int) int { return v.StoredSlotMap[k] }
	}
	flat := flattened(pat)
	raw := flat.EvalScope(doc, pattern.Scope{Root: root})
	rel := renameToSlots(flat, raw, slotMap)
	idx := rel.ColIndex(SlotCol(slotMap(witnessReturn), "id"))
	if idx < 0 {
		panic(fmt.Sprintf("view: witness id column missing in scoped extent of %q", v.Name))
	}
	out := nrel.NewRelation(rel.Cols...)
	for _, row := range rel.Rows {
		w := row[idx]
		if w.Kind == nrel.KindID && (root.Equal(w.ID) || root.IsAncestorOf(w.ID)) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// flattened strips nesting markers so that Eval yields flat rows.
func flattened(p *pattern.Pattern) *pattern.Pattern {
	c := p.Clone()
	for _, n := range c.Nodes() {
		n.Nested = false
	}
	return c.Finish()
}

// renameToSlots maps the evaluator's per-node column names (I3, V3, ...)
// to per-slot names (s0.id, s0.v, ...).
func renameToSlots(p *pattern.Pattern, rel *nrel.Relation, slotMap func(int) int) *nrel.Relation {
	names := map[string]string{}
	for k, rn := range p.Returns() {
		idx := rn.Index
		slot := slotMap(k)
		names[fmt.Sprintf("I%d", idx)] = SlotCol(slot, "id")
		names[fmt.Sprintf("L%d", idx)] = SlotCol(slot, "l")
		names[fmt.Sprintf("V%d", idx)] = SlotCol(slot, "v")
		names[fmt.Sprintf("C%d", idx)] = SlotCol(slot, "c")
	}
	out := nrel.NewRelation()
	for _, c := range rel.Cols {
		n, ok := names[c]
		if !ok {
			n = c
		}
		out.Cols = append(out.Cols, n)
	}
	out.Rows = rel.Rows
	return out
}

// SlotCol names the column of slot k's attribute.
func SlotCol(k int, attr string) string { return fmt.Sprintf("s%d.%s", k, attr) }

// DefaultMaxVersions bounds how many extent versions a store tracks (the
// live one plus retained superseded ones) when SetMaxVersions has not
// been called.
const DefaultMaxVersions = 8

// extentVersion is one immutable set of view extents, tagged with the
// maintenance epoch that produced it. Versions are never mutated after
// installation: every change to the live store clones the maps and
// installs a fresh version, so a pinned version reads consistently
// forever.
type extentVersion struct {
	epoch int64
	// sorted records that every base-view extent in this version is
	// key-sorted (the maintenance engine's splice invariant); established
	// copy-on-write when updates begin.
	sorted   bool
	rels     map[string]*nrel.Relation
	prepared map[string]*nrel.Relation
	// zoneSeeds holds zone maps read from base segments at open time, valid
	// only while the extent keeps the segment's row order (no replayed
	// deltas, no re-sort); dropped from the successor version on the first
	// invalidation.
	zoneSeeds map[string]*store.ZoneMap
	// refs counts snapshots pinning this version; guarded by the owning
	// Store's mu.
	refs int
}

// clone copies the version's maps so a successor can diverge without
// touching pinned readers.
func (v *extentVersion) clone() *extentVersion {
	nv := &extentVersion{epoch: v.epoch, sorted: v.sorted,
		rels:     make(map[string]*nrel.Relation, len(v.rels)),
		prepared: make(map[string]*nrel.Relation, len(v.prepared))}
	for k, r := range v.rels {
		nv.rels[k] = r
	}
	for k, r := range v.prepared {
		nv.prepared[k] = r
	}
	if len(v.zoneSeeds) > 0 {
		nv.zoneSeeds = make(map[string]*store.ZoneMap, len(v.zoneSeeds))
		for k, z := range v.zoneSeeds {
			nv.zoneSeeds[k] = z
		}
	}
	return nv
}

// lookupIn checks a version's extent maps for the view.
func lookupIn(ver *extentVersion, v *core.View) (*nrel.Relation, bool) {
	if v.Stored != nil {
		r, ok := ver.prepared[preparedKey(v)]
		return r, ok
	}
	r, ok := ver.rels[v.Name]
	return r, ok
}

// blockCache caches columnar block handles across extent versions; it is
// shared by a live store and all its snapshots. Each handle records the
// exact relation it was built over (Blocks.Rel), so a cached handle is
// served only to a caller holding that same relation pointer — an entry
// left behind by a superseded version is just a miss, overwritten by the
// next build. Nil-safe so zero-value Stores degrade to uncached builds.
type blockCache struct {
	mu sync.Mutex
	m  map[string]*store.Blocks
}

func newBlockCache() *blockCache { return &blockCache{m: map[string]*store.Blocks{}} }

func (c *blockCache) get(key string, rel *nrel.Relation) *store.Blocks {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if b := c.m[key]; b != nil && b.Rel == rel {
		return b
	}
	return nil
}

func (c *blockCache) put(key string, b *store.Blocks) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.m[key] = b
	c.mu.Unlock()
}

// Store holds materialized (flat) view extents by name, multi-versioned:
// the live extent set is an immutable extentVersion, and every mutation
// (an update batch, a lazy materialization, a Put) installs a fresh
// version copy-on-write. Snapshot pins the live version in O(1) and
// readers execute whole plans against the pin while ApplyUpdates installs
// successors without waiting for them; a superseded version is retained
// until its last pin drops (Release), within a bounded window (see
// SetMaxVersions) so slow readers can never make the store accumulate
// versions without bound.
//
// Prepared views (those carrying reasoning-only virtual attributes) are
// cached separately because their column naming differs from the stored
// definition's.
//
// A Store is safe for concurrent use by readers and one updater: lazy
// materialization uses double-checked locking, so many goroutines can
// execute plans against one store. Callers that apply updates must
// serialize ApplyUpdates calls among themselves (delta chains append in
// epoch order) and must not concurrently materialize from the live
// document — serving layers route all mutation through one committer
// goroutine and read through Snapshot, which never touches the document.
type Store struct {
	mu    sync.RWMutex
	doc   *xmltree.Document // nil for disk-backed stores (OpenStore) and snapshots
	views []*core.View
	// msum is the incrementally maintained summary, built lazily on the
	// first update batch and advanced with each one, so per-batch summary
	// cost is O(change), not O(document). Owned by the updater.
	msum *summary.Maintained
	// cur is the live extent version; guarded by mu.
	cur *extentVersion
	// retained holds superseded versions still pinned by snapshots, oldest
	// first, bounded by maxVersions; guarded by mu.
	retained    []*extentVersion
	maxVersions int // 0 means DefaultMaxVersions
	// blocks caches columnar block handles, shared with snapshots (it
	// validates by relation pointer, so versions cannot cross-contaminate).
	blocks *blockCache

	// Snapshot-only fields. parent is the live store whose version the
	// snapshot pinned; snap is that immutable version; overlay holds
	// extents materialized lazily on the snapshot itself (prepared renames
	// over frozen bases), guarded by the snapshot's own mu.
	parent   *Store
	snap     *extentVersion
	released bool // guarded by parent.mu
	overlay  map[string]*nrel.Relation
}

// preparedKey identifies a prepared view's extent across rewriter clones.
func preparedKey(v *core.View) string { return v.Name + "\x1f" + v.Pattern.String() }

// NewStore materializes all base views over the document. Derived
// navigation views are materialized lazily by the executor.
func NewStore(doc *xmltree.Document, views []*core.View) *Store {
	st := &Store{doc: doc, views: views, blocks: newBlockCache(),
		cur: &extentVersion{rels: map[string]*nrel.Relation{}, prepared: map[string]*nrel.Relation{}}}
	for _, v := range views {
		st.cur.rels[v.Name] = MaterializeFlat(v, doc)
	}
	return st
}

// Document returns the store's backing document; nil for stores opened
// from disk that have not attached one with SetDocument, and always nil
// for snapshots.
func (st *Store) Document() *xmltree.Document { return st.doc }

// SetDocument attaches the source document to a disk-opened store, making
// it updatable. The document must be the one the stored extents were
// materialized from (BuildStore persists it alongside the segments).
func (st *Store) SetDocument(doc *xmltree.Document) {
	st.mu.Lock()
	st.doc = doc
	st.msum = nil // rebuilt from the new document on the next batch
	st.mu.Unlock()
}

// Epoch returns the store's maintenance epoch: the number of update
// batches applied since the extents were built. A snapshot reports the
// epoch of its pinned version.
func (st *Store) Epoch() int64 {
	if st.parent != nil {
		return st.snap.epoch
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.cur.epoch
}

// Snapshot pins the live extent version and returns a read-only store
// over it: later ApplyUpdates calls install successor versions and cannot
// affect the snapshot, so a multi-view plan executed against it sees one
// consistent epoch. Pinning is O(1) — no extents are copied. The snapshot
// carries no document (prepared extents derive from the frozen bases) and
// must not be used with ApplyUpdates. Callers should Release the snapshot
// when done so the parent store can drop superseded versions promptly;
// an unreleased snapshot stays readable regardless.
func (st *Store) Snapshot() *Store {
	if st.parent != nil {
		// Snapshot of a snapshot: re-pin the same version.
		p := st.parent
		p.mu.Lock()
		st.snap.refs++
		p.mu.Unlock()
		return &Store{views: st.views, parent: p, snap: st.snap, blocks: st.blocks}
	}
	st.mu.Lock()
	v := st.cur
	v.refs++
	st.mu.Unlock()
	return &Store{views: st.views, parent: st, snap: v, blocks: st.blocks}
}

// Release drops a snapshot's pin. When the last pin on a superseded
// version drops, the parent store stops retaining it. Release is
// idempotent and a no-op on a live store.
func (st *Store) Release() {
	if st.parent == nil {
		return
	}
	p := st.parent
	p.mu.Lock()
	defer p.mu.Unlock()
	if st.released {
		return
	}
	st.released = true
	v := st.snap
	if v.refs > 0 {
		v.refs--
	}
	if v.refs == 0 && v != p.cur {
		for i, r := range p.retained {
			if r == v {
				p.retained = append(p.retained[:i], p.retained[i+1:]...)
				break
			}
		}
	}
}

// Versions reports how many extent versions the store tracks: the live
// one plus superseded versions retained for pinned snapshots. Bounded by
// SetMaxVersions (DefaultMaxVersions when unset).
func (st *Store) Versions() int {
	if st.parent != nil {
		return st.parent.Versions()
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	return 1 + len(st.retained)
}

// SetMaxVersions bounds the retention window: at most n versions (live
// included) are tracked, force-releasing the oldest beyond the bound so a
// stalled reader can never block or bloat the write path. Force-released
// versions stay safe for the snapshots still pinning them — those read
// through their own references; the store merely stops tracking the
// version. n <= 0 keeps the current bound.
func (st *Store) SetMaxVersions(n int) {
	if st.parent != nil || n <= 0 {
		return
	}
	st.mu.Lock()
	st.maxVersions = n
	st.trimLocked()
	st.mu.Unlock()
}

// install publishes nv as the live version; callers hold the write lock.
// The superseded version is retained while snapshots pin it, within the
// retention bound.
func (st *Store) install(nv *extentVersion) {
	old := st.cur
	st.cur = nv
	if old != nil && old.refs > 0 {
		st.retained = append(st.retained, old)
	}
	st.trimLocked()
}

// trimLocked enforces the retention bound, force-releasing oldest first;
// callers hold the write lock.
func (st *Store) trimLocked() {
	max := st.maxVersions
	if max <= 0 {
		max = DefaultMaxVersions
	}
	for len(st.retained) > 0 && 1+len(st.retained) > max {
		copy(st.retained, st.retained[1:])
		st.retained[len(st.retained)-1] = nil
		st.retained = st.retained[:len(st.retained)-1]
	}
}

// ApplyUpdates maintains the store through one typed update batch: the
// document is mutated (atomically — a failing update rolls the whole batch
// back), affected extents are re-derived through the maintenance engine's
// relevance mapping, and a successor extent version is installed with
// prepared-extent caches for changed views dropped. The returned batch
// carries the per-view tuple deltas and the rebuilt summary; the store
// epoch advances by one.
//
// Readers never wait: they pin versions via Snapshot and the diff/splice
// pass runs outside the store lock. Callers that apply updates must
// serialize among themselves so delta chains append in epoch order.
func (st *Store) ApplyUpdates(updates []xmltree.Update) (*maintain.Batch, error) {
	return st.ApplyUpdatesCtx(context.Background(), updates)
}

// ApplyUpdatesCtx is ApplyUpdates with a context. When ctx carries an
// obs.Trace, the maintenance engine records aggregate "diff" and "splice"
// spans on it; the context is otherwise unused (maintenance is not
// cancellable mid-batch — a partial apply would desync extents from the
// document).
func (st *Store) ApplyUpdatesCtx(ctx context.Context, updates []xmltree.Update) (*maintain.Batch, error) {
	if st.parent != nil {
		return nil, fmt.Errorf("view: cannot apply updates to a snapshot")
	}
	st.mu.Lock()
	if st.doc == nil {
		st.mu.Unlock()
		return nil, fmt.Errorf("view: store has no document attached; rebuild the store or SetDocument first")
	}
	if st.msum == nil {
		// First batch since the document was attached: one O(document)
		// summary build, then every batch maintains it incrementally.
		st.msum = summary.NewMaintained(st.doc)
	}
	if !st.cur.sorted {
		// Establish the key-sorted extent invariant the scoped splice
		// depends on, installed as a fresh same-epoch version so pinned
		// snapshots keep their row order.
		nv := st.cur.clone()
		for _, v := range st.views {
			if r, ok := nv.rels[v.Name]; ok {
				nv.rels[v.Name] = maintain.SortByKey(r)
				delete(nv.zoneSeeds, v.Name)
			}
		}
		nv.sorted = true
		st.install(nv)
	}
	base := st.cur
	doc, views, msum := st.doc, st.views, st.msum
	st.mu.Unlock()

	// The diff/splice pass runs without the store lock: base is immutable,
	// and the document and summary belong to the serialized updater —
	// readers work through pinned snapshots and touch neither.
	batch, err := maintain.ComputeDeltas(doc, views, updates,
		func(v *core.View) *nrel.Relation {
			if r, ok := base.rels[v.Name]; ok {
				return r
			}
			return nrel.NewRelation(flatCols(v)...)
		}, maintain.Engine{
			Mat:           MaterializeFlat,
			MatScoped:     MaterializeFlatScoped,
			Summary:       msum,
			SortedExtents: true,
			Ctx:           ctx,
		})
	if err != nil {
		return nil, err // ComputeDeltas rolled the document back
	}

	st.mu.Lock()
	// Clone the *current* version, not base: a concurrent lazy
	// materialization may have installed extents meanwhile; the deltas'
	// base views are always present, so d.New still wins below.
	nv := st.cur.clone()
	for _, d := range batch.Deltas {
		nv.rels[d.View.Name] = d.New
		delete(nv.zoneSeeds, d.View.Name)
		prefix := d.View.Name + "\x1f"
		for k := range nv.prepared {
			if strings.HasPrefix(k, prefix) {
				delete(nv.prepared, k)
			}
		}
	}
	nv.epoch = base.epoch + 1
	st.msum = batch.Maintained
	st.install(nv)
	st.mu.Unlock()
	return batch, nil
}

// flatCols returns the column schema MaterializeFlat would produce for an
// empty extent of the view.
func flatCols(v *core.View) []string {
	pat := v.Pattern
	slotMap := func(k int) int { return k }
	if v.Stored != nil {
		pat = v.Stored
		slotMap = func(k int) int { return v.StoredSlotMap[k] }
	}
	flat := flattened(pat)
	var cols []string
	for k, rn := range flat.Returns() {
		slot := slotMap(k)
		for _, attr := range rn.Attrs.Names() {
			cols = append(cols, SlotCol(slot, attr))
		}
	}
	return cols
}

// Relation returns the flat extent of a view, materializing on demand.
// The returned relation's backing storage is shared with the store's
// cache and every concurrent reader: callers must clone before mutating.
//
//xvlint:sharedreturn
func (st *Store) Relation(v *core.View) *nrel.Relation {
	if st.parent != nil {
		return st.snapRelation(v)
	}
	st.mu.RLock()
	r, ok := lookupIn(st.cur, v)
	st.mu.RUnlock()
	if ok {
		return r
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if r, ok := lookupIn(st.cur, v); ok {
		return r
	}
	r = st.materialize(v)
	nv := st.cur.clone()
	if v.Stored != nil {
		nv.prepared[preparedKey(v)] = r
	} else {
		nv.rels[v.Name] = r
		delete(nv.zoneSeeds, v.Name)
		nv.sorted = false // fresh eval order; re-sorted on the next batch
	}
	st.install(nv)
	return r
}

// snapRelation serves a snapshot read: the pinned version first, then the
// snapshot's private overlay of lazily derived extents.
func (st *Store) snapRelation(v *core.View) *nrel.Relation {
	if r, ok := lookupIn(st.snap, v); ok {
		return r
	}
	key := v.Name
	if v.Stored != nil {
		key = preparedKey(v)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if r, ok := st.overlay[key]; ok {
		return r
	}
	r := materializeFrom(st.snap, v)
	if st.overlay == nil {
		st.overlay = map[string]*nrel.Relation{}
	}
	st.overlay[key] = r
	return r
}

// Blocks returns a columnar block handle over the view's current extent,
// building and caching it on first use, or nil when the view cannot be
// served column-wise (navigation views build rows on the fly) or its extent
// is not materialized yet. Prepared views are served through their renamed
// extent — the rows are shared with the stored base, so the base segment's
// zone maps remain valid; virtual ID columns are NOT part of the handle
// (the executor derives them for surviving rows only). The handle is
// immutable and pinned to one extent pointer: after an update replaces the
// extent, the next call rebuilds. Zone maps persisted in the base segment
// seed the handle when the extent still has the segment's row order.
//
//xvlint:sharedreturn
func (st *Store) Blocks(v *core.View) *store.Blocks {
	if v.Nav != nil {
		return nil
	}
	key := v.Name
	if v.Stored != nil {
		key = preparedKey(v)
	}
	var rel *nrel.Relation
	var ok bool
	var seed *store.ZoneMap
	if st.parent != nil {
		rel, ok = lookupIn(st.snap, v)
		seed = st.snap.zoneSeeds[v.Name]
	} else {
		st.mu.RLock()
		rel, ok = lookupIn(st.cur, v)
		seed = st.cur.zoneSeeds[v.Name]
		st.mu.RUnlock()
	}
	if !ok {
		if v.Stored == nil {
			return nil
		}
		// A prepared extent materializes on demand (renamed header over the
		// base extent's shared rows); Relation caches it, pinning the handle
		// built below to the cached pointer.
		rel = st.Relation(v)
	}
	if b := st.blocks.get(key, rel); b != nil {
		return b
	}
	built := store.BlocksFromRelation(rel, seed)
	st.blocks.put(key, built)
	return built
}

// materialize builds the extent of a cache-missed view on the live store;
// callers hold the write lock. With a document attached the view is
// evaluated over it. A disk-backed store has no document: a prepared
// view's extent is then derived from the stored base extent by renaming
// slot columns (the data is identical — preparation only adds reasoning
// attributes), and a missing base extent is a caller error.
func (st *Store) materialize(v *core.View) *nrel.Relation {
	if st.doc != nil {
		return MaterializeFlat(v, st.doc)
	}
	return materializeFrom(st.cur, v)
}

// materializeFrom derives a prepared extent from a version's stored base.
func materializeFrom(ver *extentVersion, v *core.View) *nrel.Relation {
	base, ok := ver.rels[v.Name]
	if !ok || v.Stored == nil {
		panic(fmt.Sprintf("view: extent %q not in store and no document attached", v.Name))
	}
	return renameStored(base, v)
}

// renameStored maps a stored base extent's identity slot columns
// (s<k>.<attr> for stored slot k) to the prepared view's slot numbering
// via StoredSlotMap. Rows are shared; only the column header changes.
func renameStored(base *nrel.Relation, v *core.View) *nrel.Relation {
	names := map[string]string{}
	for k := 0; k < v.Stored.Arity(); k++ {
		for _, attr := range []string{"id", "l", "v", "c"} {
			names[SlotCol(k, attr)] = SlotCol(v.StoredSlotMap[k], attr)
		}
	}
	out := nrel.NewRelation()
	for _, c := range base.Cols {
		n, ok := names[c]
		if !ok {
			n = c
		}
		out.Cols = append(out.Cols, n)
	}
	out.Rows = base.Rows
	return out
}

// Put registers a precomputed extent (used by tests and by the executor
// for derived views). A Put extent is not necessarily key-sorted, so the
// sorted-extent invariant is re-established on the next update batch. On a
// snapshot the extent lands in the snapshot's private overlay.
func (st *Store) Put(name string, r *nrel.Relation) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.parent != nil {
		if st.overlay == nil {
			st.overlay = map[string]*nrel.Relation{}
		}
		st.overlay[name] = r
		return
	}
	nv := st.cur.clone()
	nv.rels[name] = r
	delete(nv.zoneSeeds, name)
	nv.sorted = false
	st.install(nv)
}

// Has reports whether the store already holds the named extent.
func (st *Store) Has(name string) bool {
	if st.parent != nil {
		if _, ok := st.snap.rels[name]; ok {
			return true
		}
		st.mu.RLock()
		_, ok := st.overlay[name]
		st.mu.RUnlock()
		return ok
	}
	st.mu.RLock()
	_, ok := st.cur.rels[name]
	st.mu.RUnlock()
	return ok
}
