// Package view materializes tree pattern views over documents and manages
// the resulting nested tables (Figure 1(c) of the paper).
//
// Two forms are produced. The nested form is the paper's view extent: one
// table column per nested edge, ⊥ for optional non-bindings. The flat form
// unnests every table and is the substrate the algebra executor operates
// on; re-nesting happens at plan output according to the plan's nesting
// sequences.
package view

import (
	"fmt"

	"xmlviews/internal/core"
	"xmlviews/internal/nrel"
	"xmlviews/internal/pattern"
	"xmlviews/internal/xmltree"
)

// Materialize evaluates the view definition over the document and returns
// its nested extent.
func Materialize(v *core.View, doc *xmltree.Document) *nrel.Relation {
	return v.Pattern.Eval(doc)
}

// MaterializeFlat evaluates the view with nested edges flattened and
// content stored with original identifiers. Columns are named s<k>.<attr>
// for slot k (id, l, v, c). When the view carries reasoning-only virtual
// attributes (Stored != nil), only the stored pattern is evaluated and its
// columns are named after the prepared slot indexes; the executor derives
// the virtual columns.
func MaterializeFlat(v *core.View, doc *xmltree.Document) *nrel.Relation {
	pat := v.Pattern
	slotMap := func(k int) int { return k }
	if v.Stored != nil {
		pat = v.Stored
		slotMap = func(k int) int { return v.StoredSlotMap[k] }
	}
	flat := flattened(pat)
	raw := flat.Eval(doc)
	return renameToSlots(flat, raw, slotMap)
}

// flattened strips nesting markers so that Eval yields flat rows.
func flattened(p *pattern.Pattern) *pattern.Pattern {
	c := p.Clone()
	for _, n := range c.Nodes() {
		n.Nested = false
	}
	return c.Finish()
}

// renameToSlots maps the evaluator's per-node column names (I3, V3, ...)
// to per-slot names (s0.id, s0.v, ...).
func renameToSlots(p *pattern.Pattern, rel *nrel.Relation, slotMap func(int) int) *nrel.Relation {
	names := map[string]string{}
	for k, rn := range p.Returns() {
		idx := rn.Index
		slot := slotMap(k)
		names[fmt.Sprintf("I%d", idx)] = SlotCol(slot, "id")
		names[fmt.Sprintf("L%d", idx)] = SlotCol(slot, "l")
		names[fmt.Sprintf("V%d", idx)] = SlotCol(slot, "v")
		names[fmt.Sprintf("C%d", idx)] = SlotCol(slot, "c")
	}
	out := nrel.NewRelation()
	for _, c := range rel.Cols {
		n, ok := names[c]
		if !ok {
			n = c
		}
		out.Cols = append(out.Cols, n)
	}
	out.Rows = rel.Rows
	return out
}

// SlotCol names the column of slot k's attribute.
func SlotCol(k int, attr string) string { return fmt.Sprintf("s%d.%s", k, attr) }

// Store holds materialized (flat) view extents by name. Prepared views
// (those carrying reasoning-only virtual attributes) are cached separately
// because their column naming differs from the stored definition's.
type Store struct {
	doc      *xmltree.Document
	rels     map[string]*nrel.Relation
	prepared map[*core.View]*nrel.Relation
}

// NewStore materializes all base views over the document. Derived
// navigation views are materialized lazily by the executor.
func NewStore(doc *xmltree.Document, views []*core.View) *Store {
	st := &Store{doc: doc, rels: map[string]*nrel.Relation{}, prepared: map[*core.View]*nrel.Relation{}}
	for _, v := range views {
		st.rels[v.Name] = MaterializeFlat(v, doc)
	}
	return st
}

// Document returns the store's backing document.
func (st *Store) Document() *xmltree.Document { return st.doc }

// Relation returns the flat extent of a view, materializing on demand.
func (st *Store) Relation(v *core.View) *nrel.Relation {
	if v.Stored != nil {
		if r, ok := st.prepared[v]; ok {
			return r
		}
		r := MaterializeFlat(v, st.doc)
		st.prepared[v] = r
		return r
	}
	if r, ok := st.rels[v.Name]; ok {
		return r
	}
	r := MaterializeFlat(v, st.doc)
	st.rels[v.Name] = r
	return r
}

// Put registers a precomputed extent (used by tests and by the executor
// for derived views).
func (st *Store) Put(name string, r *nrel.Relation) { st.rels[name] = r }

// Has reports whether the store already holds the named extent.
func (st *Store) Has(name string) bool {
	_, ok := st.rels[name]
	return ok
}
