// Package view materializes tree pattern views over documents and manages
// the resulting nested tables (Figure 1(c) of the paper).
//
// Two forms are produced. The nested form is the paper's view extent: one
// table column per nested edge, ⊥ for optional non-bindings. The flat form
// unnests every table and is the substrate the algebra executor operates
// on; re-nesting happens at plan output according to the plan's nesting
// sequences.
package view

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"xmlviews/internal/core"
	"xmlviews/internal/maintain"
	"xmlviews/internal/nodeid"
	"xmlviews/internal/nrel"
	"xmlviews/internal/pattern"
	"xmlviews/internal/store"
	"xmlviews/internal/summary"
	"xmlviews/internal/xmltree"
)

// Materialize evaluates the view definition over the document and returns
// its nested extent.
func Materialize(v *core.View, doc *xmltree.Document) *nrel.Relation {
	return v.Pattern.Eval(doc)
}

// MaterializeFlat evaluates the view with nested edges flattened and
// content stored with original identifiers. Columns are named s<k>.<attr>
// for slot k (id, l, v, c). When the view carries reasoning-only virtual
// attributes (Stored != nil), only the stored pattern is evaluated and its
// columns are named after the prepared slot indexes; the executor derives
// the virtual columns.
func MaterializeFlat(v *core.View, doc *xmltree.Document) *nrel.Relation {
	pat := v.Pattern
	slotMap := func(k int) int { return k }
	if v.Stored != nil {
		pat = v.Stored
		slotMap = func(k int) int { return v.StoredSlotMap[k] }
	}
	flat := flattened(pat)
	raw := flat.Eval(doc)
	return renameToSlots(flat, raw, slotMap)
}

// MaterializeFlatScoped evaluates the witnessed scoped extent the
// maintenance engine's fast path needs: the flattened pattern is evaluated
// only on the chain and subtree of root (pattern.EvalScope), and rows are
// kept only when their witness identifier — the id column of the
// flattened pattern's witnessReturn-th return node — lies at or below
// root. See internal/maintain/scope.go for why this subset is exactly the
// extent's changeable region.
func MaterializeFlatScoped(v *core.View, doc *xmltree.Document, root nodeid.ID, witnessReturn int) *nrel.Relation {
	pat := v.Pattern
	slotMap := func(k int) int { return k }
	if v.Stored != nil {
		pat = v.Stored
		slotMap = func(k int) int { return v.StoredSlotMap[k] }
	}
	flat := flattened(pat)
	raw := flat.EvalScope(doc, pattern.Scope{Root: root})
	rel := renameToSlots(flat, raw, slotMap)
	idx := rel.ColIndex(SlotCol(slotMap(witnessReturn), "id"))
	if idx < 0 {
		panic(fmt.Sprintf("view: witness id column missing in scoped extent of %q", v.Name))
	}
	out := nrel.NewRelation(rel.Cols...)
	for _, row := range rel.Rows {
		w := row[idx]
		if w.Kind == nrel.KindID && (root.Equal(w.ID) || root.IsAncestorOf(w.ID)) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// flattened strips nesting markers so that Eval yields flat rows.
func flattened(p *pattern.Pattern) *pattern.Pattern {
	c := p.Clone()
	for _, n := range c.Nodes() {
		n.Nested = false
	}
	return c.Finish()
}

// renameToSlots maps the evaluator's per-node column names (I3, V3, ...)
// to per-slot names (s0.id, s0.v, ...).
func renameToSlots(p *pattern.Pattern, rel *nrel.Relation, slotMap func(int) int) *nrel.Relation {
	names := map[string]string{}
	for k, rn := range p.Returns() {
		idx := rn.Index
		slot := slotMap(k)
		names[fmt.Sprintf("I%d", idx)] = SlotCol(slot, "id")
		names[fmt.Sprintf("L%d", idx)] = SlotCol(slot, "l")
		names[fmt.Sprintf("V%d", idx)] = SlotCol(slot, "v")
		names[fmt.Sprintf("C%d", idx)] = SlotCol(slot, "c")
	}
	out := nrel.NewRelation()
	for _, c := range rel.Cols {
		n, ok := names[c]
		if !ok {
			n = c
		}
		out.Cols = append(out.Cols, n)
	}
	out.Rows = rel.Rows
	return out
}

// SlotCol names the column of slot k's attribute.
func SlotCol(k int, attr string) string { return fmt.Sprintf("s%d.%s", k, attr) }

// Store holds materialized (flat) view extents by name. Prepared views
// (those carrying reasoning-only virtual attributes) are cached separately
// because their column naming differs from the stored definition's.
//
// A Store is safe for concurrent use: lazy materialization is guarded by a
// read-write mutex with double-checked lookup, so many goroutines can
// execute plans against one store. ApplyUpdates mutates the document and
// every affected extent under the same write lock, so each individual
// Relation read is atomic with respect to a batch; a plan scanning
// several views concurrently with updates should execute against a
// Snapshot, which freezes all extents at one epoch.
type Store struct {
	mu    sync.RWMutex
	doc   *xmltree.Document // nil for disk-backed stores (OpenStore)
	views []*core.View
	epoch int64
	rels  map[string]*nrel.Relation
	// msum is the incrementally maintained summary, built lazily on the
	// first update batch and advanced with each one, so per-batch summary
	// cost is O(change), not O(document).
	msum *summary.Maintained
	// sortedExt records that every base-view extent is key-sorted (the
	// maintenance engine's splice invariant); established copy-on-write
	// when updates begin.
	sortedExt bool
	// prepared is keyed by the view's name plus canonical pattern text, not
	// by *core.View: the rewriter clones views on every call, and a
	// long-running server would otherwise accumulate one cache entry per
	// clone. Two prepared views with equal name and pattern text have
	// byte-identical extents.
	prepared map[string]*nrel.Relation
	// blocks caches columnar block handles per base view. Each handle
	// records the exact relation it was built over; a cached handle is
	// served only while st.rels still holds that pointer, so updates (which
	// swap extent pointers) can never leak stale vectors.
	blocks map[string]*store.Blocks
	// zoneSeeds holds zone maps read from base segments at open time, valid
	// only while the extent keeps the segment's row order (no replayed
	// deltas, no re-sort); dropped on the first invalidation.
	zoneSeeds map[string]*store.ZoneMap
}

// preparedKey identifies a prepared view's extent across rewriter clones.
func preparedKey(v *core.View) string { return v.Name + "\x1f" + v.Pattern.String() }

// NewStore materializes all base views over the document. Derived
// navigation views are materialized lazily by the executor.
func NewStore(doc *xmltree.Document, views []*core.View) *Store {
	st := &Store{doc: doc, views: views, rels: map[string]*nrel.Relation{}, prepared: map[string]*nrel.Relation{}}
	for _, v := range views {
		st.rels[v.Name] = MaterializeFlat(v, doc)
	}
	return st
}

// Document returns the store's backing document; nil for stores opened
// from disk that have not attached one with SetDocument.
func (st *Store) Document() *xmltree.Document { return st.doc }

// SetDocument attaches the source document to a disk-opened store, making
// it updatable. The document must be the one the stored extents were
// materialized from (BuildStore persists it alongside the segments).
func (st *Store) SetDocument(doc *xmltree.Document) {
	st.mu.Lock()
	st.doc = doc
	st.msum = nil // rebuilt from the new document on the next batch
	st.mu.Unlock()
}

// Epoch returns the store's maintenance epoch: the number of update
// batches applied since the extents were built.
func (st *Store) Epoch() int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.epoch
}

// Snapshot returns a read-only store freezing every current extent at the
// current epoch: later ApplyUpdates calls on the original replace extent
// pointers and cannot affect the snapshot, so a multi-view plan executed
// against it sees one consistent state. The snapshot carries no document
// (prepared extents derive from the frozen bases) and must not be used
// with ApplyUpdates or Put.
func (st *Store) Snapshot() *Store {
	st.mu.RLock()
	defer st.mu.RUnlock()
	snap := &Store{views: st.views, epoch: st.epoch,
		rels: make(map[string]*nrel.Relation, len(st.rels)), prepared: make(map[string]*nrel.Relation, len(st.prepared))}
	for k, v := range st.rels {
		snap.rels[k] = v
	}
	for k, v := range st.prepared {
		snap.prepared[k] = v
	}
	// Block handles and zone seeds stay valid on the snapshot: they are
	// pinned to the frozen relation pointers copied above.
	if len(st.blocks) > 0 {
		snap.blocks = make(map[string]*store.Blocks, len(st.blocks))
		for k, v := range st.blocks {
			snap.blocks[k] = v
		}
	}
	if len(st.zoneSeeds) > 0 {
		snap.zoneSeeds = make(map[string]*store.ZoneMap, len(st.zoneSeeds))
		for k, v := range st.zoneSeeds {
			snap.zoneSeeds[k] = v
		}
	}
	return snap
}

// ApplyUpdates maintains the store through one typed update batch: the
// document is mutated (atomically — a failing update rolls the whole batch
// back), affected extents are re-derived through the maintenance engine's
// relevance mapping, and prepared-extent caches for changed views are
// dropped. The returned batch carries the per-view tuple deltas and the
// rebuilt summary; the store epoch advances by one.
//
// Concurrent queries are safe (they serialize against the write lock), but
// callers that also persist the batch must serialize ApplyUpdates calls
// among themselves so delta chains append in epoch order.
func (st *Store) ApplyUpdates(updates []xmltree.Update) (*maintain.Batch, error) {
	return st.ApplyUpdatesCtx(context.Background(), updates)
}

// ApplyUpdatesCtx is ApplyUpdates with a context. When ctx carries an
// obs.Trace, the maintenance engine records aggregate "diff" and "splice"
// spans on it; the context is otherwise unused (maintenance is not
// cancellable mid-batch — a partial apply would desync extents from the
// document).
func (st *Store) ApplyUpdatesCtx(ctx context.Context, updates []xmltree.Update) (*maintain.Batch, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.doc == nil {
		return nil, fmt.Errorf("view: store has no document attached; rebuild the store or SetDocument first")
	}
	if st.msum == nil {
		// First batch since the document was attached: one O(document)
		// summary build, then every batch maintains it incrementally.
		st.msum = summary.NewMaintained(st.doc)
	}
	if !st.sortedExt {
		// Establish the key-sorted extent invariant the scoped splice
		// depends on, copy-on-write so concurrent snapshot readers keep
		// their row order.
		for _, v := range st.views {
			if r, ok := st.rels[v.Name]; ok {
				st.rels[v.Name] = maintain.SortByKey(r)
				st.invalidateBlocks(v.Name)
			}
		}
		st.sortedExt = true
	}
	batch, err := maintain.ComputeDeltas(st.doc, st.views, updates,
		func(v *core.View) *nrel.Relation {
			if r, ok := st.rels[v.Name]; ok {
				return r
			}
			return nrel.NewRelation(flatCols(v)...)
		}, maintain.Engine{
			Mat:           MaterializeFlat,
			MatScoped:     MaterializeFlatScoped,
			Summary:       st.msum,
			SortedExtents: true,
			Ctx:           ctx,
		})
	if err != nil {
		return nil, err
	}
	st.msum = batch.Maintained
	for _, d := range batch.Deltas {
		st.rels[d.View.Name] = d.New
		st.invalidateBlocks(d.View.Name)
		prefix := d.View.Name + "\x1f"
		for k := range st.prepared {
			if strings.HasPrefix(k, prefix) {
				delete(st.prepared, k)
			}
		}
		// Block handles over prepared extents share the same key space.
		for k := range st.blocks {
			if strings.HasPrefix(k, prefix) {
				delete(st.blocks, k)
			}
		}
	}
	st.epoch++
	return batch, nil
}

// flatCols returns the column schema MaterializeFlat would produce for an
// empty extent of the view.
func flatCols(v *core.View) []string {
	pat := v.Pattern
	slotMap := func(k int) int { return k }
	if v.Stored != nil {
		pat = v.Stored
		slotMap = func(k int) int { return v.StoredSlotMap[k] }
	}
	flat := flattened(pat)
	var cols []string
	for k, rn := range flat.Returns() {
		slot := slotMap(k)
		for _, attr := range rn.Attrs.Names() {
			cols = append(cols, SlotCol(slot, attr))
		}
	}
	return cols
}

// Relation returns the flat extent of a view, materializing on demand.
// The returned relation's backing storage is shared with the store's
// cache and every concurrent reader: callers must clone before mutating.
//
//xvlint:sharedreturn
func (st *Store) Relation(v *core.View) *nrel.Relation {
	st.mu.RLock()
	r, ok := st.lookup(v)
	st.mu.RUnlock()
	if ok {
		return r
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if r, ok := st.lookup(v); ok {
		return r
	}
	r = st.materialize(v)
	if v.Stored != nil {
		st.prepared[preparedKey(v)] = r
	} else {
		st.rels[v.Name] = r
		st.invalidateBlocks(v.Name)
		st.sortedExt = false // fresh eval order; re-sorted on the next batch
	}
	return r
}

// invalidateBlocks drops the cached block handle and zone seed of one view;
// callers hold the write lock and are about to (or just did) replace the
// view's extent pointer, which both depend on.
func (st *Store) invalidateBlocks(name string) {
	delete(st.blocks, name)
	delete(st.zoneSeeds, name)
}

// Blocks returns a columnar block handle over the view's current extent,
// building and caching it on first use, or nil when the view cannot be
// served column-wise (navigation views build rows on the fly) or its extent
// is not materialized yet. Prepared views are served through their renamed
// extent — the rows are shared with the stored base, so the base segment's
// zone maps remain valid; virtual ID columns are NOT part of the handle
// (the executor derives them for surviving rows only). The handle is
// immutable and pinned to one extent pointer: after an update replaces the
// extent, the next call rebuilds. Zone maps persisted in the base segment
// seed the handle when the extent still has the segment's row order.
//
//xvlint:sharedreturn
func (st *Store) Blocks(v *core.View) *store.Blocks {
	if v.Nav != nil {
		return nil
	}
	key := v.Name
	if v.Stored != nil {
		key = preparedKey(v)
	}
	st.mu.RLock()
	rel, ok := st.lookup(v)
	var cached *store.Blocks
	if ok {
		if b := st.blocks[key]; b != nil && b.Rel == rel {
			cached = b
		}
	}
	seed := st.zoneSeeds[v.Name]
	st.mu.RUnlock()
	if cached != nil {
		return cached
	}
	if !ok {
		if v.Stored == nil {
			return nil
		}
		// A prepared extent materializes on demand (renamed header over the
		// base extent's shared rows); Relation caches it, pinning the handle
		// built below to the cached pointer.
		rel = st.Relation(v)
	}
	built := store.BlocksFromRelation(rel, seed)
	st.mu.Lock()
	if cur, stillOK := st.lookup(v); stillOK && cur == rel {
		if st.blocks == nil {
			st.blocks = map[string]*store.Blocks{}
		}
		st.blocks[key] = built
	}
	st.mu.Unlock()
	return built
}

// lookup checks the caches; callers hold at least the read lock.
func (st *Store) lookup(v *core.View) (*nrel.Relation, bool) {
	if v.Stored != nil {
		r, ok := st.prepared[preparedKey(v)]
		return r, ok
	}
	r, ok := st.rels[v.Name]
	return r, ok
}

// materialize builds the extent of a cache-missed view; callers hold the
// write lock. With a document attached the view is evaluated over it. A
// disk-backed store has no document: a prepared view's extent is then
// derived from the stored base extent by renaming slot columns (the data
// is identical — preparation only adds reasoning attributes), and a
// missing base extent is a caller error.
func (st *Store) materialize(v *core.View) *nrel.Relation {
	if st.doc != nil {
		return MaterializeFlat(v, st.doc)
	}
	base, ok := st.rels[v.Name]
	if !ok || v.Stored == nil {
		panic(fmt.Sprintf("view: extent %q not in store and no document attached", v.Name))
	}
	return renameStored(base, v)
}

// renameStored maps a stored base extent's identity slot columns
// (s<k>.<attr> for stored slot k) to the prepared view's slot numbering
// via StoredSlotMap. Rows are shared; only the column header changes.
func renameStored(base *nrel.Relation, v *core.View) *nrel.Relation {
	names := map[string]string{}
	for k := 0; k < v.Stored.Arity(); k++ {
		for _, attr := range []string{"id", "l", "v", "c"} {
			names[SlotCol(k, attr)] = SlotCol(v.StoredSlotMap[k], attr)
		}
	}
	out := nrel.NewRelation()
	for _, c := range base.Cols {
		n, ok := names[c]
		if !ok {
			n = c
		}
		out.Cols = append(out.Cols, n)
	}
	out.Rows = base.Rows
	return out
}

// Put registers a precomputed extent (used by tests and by the executor
// for derived views). A Put extent is not necessarily key-sorted, so the
// sorted-extent invariant is re-established on the next update batch.
func (st *Store) Put(name string, r *nrel.Relation) {
	st.mu.Lock()
	st.rels[name] = r
	st.invalidateBlocks(name)
	st.sortedExt = false
	st.mu.Unlock()
}

// Has reports whether the store already holds the named extent.
func (st *Store) Has(name string) bool {
	st.mu.RLock()
	_, ok := st.rels[name]
	st.mu.RUnlock()
	return ok
}
