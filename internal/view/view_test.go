package view

import (
	"testing"

	"xmlviews/internal/core"
	"xmlviews/internal/pattern"
	"xmlviews/internal/xmltree"
)

func TestMaterializeRunningExample(t *testing.T) {
	// Figure 1(c): V1 produces one tuple per item, with ⊥ where the
	// optional part is missing.
	doc := xmltree.MustParseParen(`site(regions(
		item(name "pen" description(parlist(listitem(bold "gold plated"))))
		item(name "ink" description(parlist(listitem)))
		item(name "dry")))`)
	v1 := &core.View{Name: "V1", Pattern: pattern.MustParse(
		`site(//item[id](?//listitem[id](?//bold[v])))`)}
	rel := Materialize(v1, doc)
	if rel.Len() != 3 {
		t.Fatalf("V1 rows = %d, want 3\n%s", rel.Len(), rel)
	}
	bottoms := 0
	for _, row := range rel.Rows {
		if row[1].IsNull() {
			bottoms++
		}
	}
	if bottoms != 1 {
		t.Fatalf("⊥ listitem rows = %d, want 1\n%s", bottoms, rel.Sorted())
	}
}

func TestMaterializeFlatColumns(t *testing.T) {
	doc := xmltree.MustParseParen(`a(b "1" (c "x" c "y"))`)
	v := &core.View{Name: "v", Pattern: pattern.MustParse(`a(/b[id](n/c[v]))`)}
	flat := MaterializeFlat(v, doc)
	if len(flat.Cols) != 2 || flat.Cols[0] != "s0.id" || flat.Cols[1] != "s1.v" {
		t.Fatalf("cols = %v", flat.Cols)
	}
	if flat.Len() != 2 {
		t.Fatalf("flat rows = %d, want 2 (nested edges unnested)", flat.Len())
	}
}

func TestStoreCachesAndMaterializesOnDemand(t *testing.T) {
	doc := xmltree.MustParseParen(`a(b "1")`)
	v := &core.View{Name: "v", Pattern: pattern.MustParse(`a(/b[id,v])`)}
	st := NewStore(doc, []*core.View{v})
	if !st.Has("v") {
		t.Fatal("store should have materialized v")
	}
	r1 := st.Relation(v)
	r2 := st.Relation(v)
	if r1 != r2 {
		t.Fatal("store should cache")
	}
	other := &core.View{Name: "w", Pattern: pattern.MustParse(`a(/b[v])`)}
	if st.Relation(other).Len() != 1 {
		t.Fatal("on-demand materialization failed")
	}
	if st.Document() != doc {
		t.Fatal("Document accessor wrong")
	}
}

func TestSlotCol(t *testing.T) {
	if SlotCol(3, "id") != "s3.id" {
		t.Fatal("SlotCol format changed")
	}
}

func TestSnapshotFreezesExtents(t *testing.T) {
	doc := xmltree.MustParseParen(`a(b "1")`)
	v := &core.View{Name: "v", Pattern: pattern.MustParse(`a(/b[v])`), DerivableParentIDs: true}
	st := NewStore(doc, []*core.View{v})
	snap := st.Snapshot()
	if snap.Epoch() != 0 || snap.Document() != nil {
		t.Fatalf("snapshot epoch %d, doc %v", snap.Epoch(), snap.Document())
	}
	if _, err := st.ApplyUpdates([]xmltree.Update{
		{Kind: xmltree.UpdateInsert, Parent: doc.Root.ID, Subtree: xmltree.MustParseParen(`b "2"`)},
	}); err != nil {
		t.Fatal(err)
	}
	if got := snap.Relation(v).Len(); got != 1 {
		t.Fatalf("snapshot saw the update: %d rows", got)
	}
	if got := st.Relation(v).Len(); got != 2 {
		t.Fatalf("live store missed the update: %d rows", got)
	}
	if snap.Epoch() != 0 || st.Epoch() != 1 {
		t.Fatalf("epochs: snap %d live %d", snap.Epoch(), st.Epoch())
	}
}
