// Package xmark provides the 20 XMark benchmark queries of the paper's
// evaluation (Section 5), rendered in the extended tree pattern formalism,
// together with helpers for the XMark-like documents of internal/datagen.
//
// The patterns are adaptations: XMark queries include constructs outside
// the tree pattern language (aggregates, order), so — like the paper, which
// "extracted the patterns of the 20 XMark queries" — each entry keeps the
// query's navigational skeleton: which elements it touches, its value
// predicates, and its optionality/nesting structure. Sixteen of the twenty
// carry optional edges and Q7 has three structurally unrelated variables,
// matching the properties the paper reports.
package xmark

import (
	"xmlviews/internal/pattern"
)

// queries lists the 20 XMark query patterns in the surface syntax of
// internal/pattern.
var queries = []string{
	// Q1: the name of the person with a given id.
	`site(//people(/person[id](/name[v] ?/emailaddress[v])))`,
	// Q2: the initial increases of all open auctions.
	`site(//open_auction[id](?/bidder(/increase[v])))`,
	// Q3: initial price and first bidder of auctions.
	`site(//open_auction[id](/initial[v] ?/bidder[id]))`,
	// Q4: bidder references in auction order.
	`site(//open_auction[id](/bidder(/personref[v]) ?/current[v]))`,
	// Q5: closed auctions above a price.
	`site(//closed_auction[id](/price[v]{v>40}))`,
	// Q6: items per region (wildcard region step).
	`site(/regions(/*(//item[id](?/name[v]))))`,
	// Q7: counts of description, mail and annotation pieces — three
	// variables with no structural relationship (the paper's outlier with
	// the 204-tree canonical model).
	`site(//description[c] //mail[c] //annotation[c])`,
	// Q8: people with their purchase data.
	`site(//person[id](/name[v] ?/address(/city[v])))`,
	// Q9: people and the European items they bought.
	`site(//person[id](/name[v] ?/watches(/watch[v])))`,
	// Q10: person profiles grouped by interest.
	`site(//person[id](?/profile(/interest[v] ?/income[v])))`,
	// Q11: people with income-dependent matches.
	`site(//person[id](?/profile(/income[v]{v>45000})))`,
	// Q12: as Q11, restricted further.
	`site(//person[id](?/profile(/income[v]{v>50000} /interest[v])))`,
	// Q13: names and descriptions of regional items.
	`site(//regions(//item[id](/name[v] ?/description[c])))`,
	// Q14: items whose description mentions a keyword.
	`site(//item[id](/name[v] //keyword[v]))`,
	// Q15/Q16: long path chains into listitem content.
	`site(//item(/description(/parlist(/listitem[id](?/text(/keyword[v]))))))`,
	`site(//item[id](/description(/parlist(/listitem(?/parlist[c])))))`,
	// Q17: people without homepage-like data (optional probe).
	`site(//person[id](/name[v] ?/phone[v]))`,
	// Q18: converted auction amounts.
	`site(//open_auction[id](/initial[v] ?/interval(/start[v])))`,
	// Q19: books/items sorted by location — nested grouping of mails.
	`site(//item[id](/location[v] n?/mailbox(/mail[id](/from[v]))))`,
	// Q20: grouped customer incomes — nested bidders per auction.
	`site(//open_auction[id](n?/bidder[id](/increase[v])))`,
}

// Count is the number of XMark queries.
const Count = 20

// Query returns the i-th XMark query pattern (1-based, as in the paper).
func Query(i int) *pattern.Pattern {
	return pattern.MustParse(queries[i-1])
}

// QuerySource returns the i-th query in surface syntax (1-based).
func QuerySource(i int) string { return queries[i-1] }

// All returns all 20 query patterns.
func All() []*pattern.Pattern {
	out := make([]*pattern.Pattern, Count)
	for i := range out {
		out[i] = pattern.MustParse(queries[i])
	}
	return out
}
