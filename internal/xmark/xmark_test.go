package xmark

import (
	"testing"

	"xmlviews/internal/core"
	"xmlviews/internal/datagen"
	"xmlviews/internal/summary"
)

func TestAllQueriesParseAndAreSatisfiable(t *testing.T) {
	s := summary.Build(datagen.XMark(8, 1))
	for i := 1; i <= Count; i++ {
		q := Query(i)
		if q.Arity() == 0 {
			t.Errorf("Q%d has no return nodes", i)
		}
		ok, err := core.Satisfiable(q, s)
		if err != nil {
			t.Fatalf("Q%d: %v", i, err)
		}
		if !ok {
			t.Errorf("Q%d unsatisfiable under the XMark summary: %s", i, QuerySource(i))
		}
	}
}

func TestQueryProperties(t *testing.T) {
	optional, nested := 0, 0
	for _, q := range All() {
		if q.HasOptional() {
			optional++
		}
		if q.HasNested() {
			nested++
		}
	}
	// The paper reports 16 of 20 XMark patterns carry optional edges.
	if optional < 14 {
		t.Errorf("only %d queries have optional edges, want >=14", optional)
	}
	if nested < 2 {
		t.Errorf("only %d queries have nested edges, want >=2", nested)
	}
}

func TestQ7HasLargeCanonicalModel(t *testing.T) {
	s := summary.Build(datagen.XMark(8, 1))
	model, err := core.Model(Query(7), s)
	if err != nil {
		t.Fatal(err)
	}
	// Q7's unrelated variables multiply: the paper reports 204 trees on
	// the real summary; ours must be the clear outlier (others are tiny).
	if len(model) < 40 {
		t.Fatalf("Q7 model has %d trees, expected the large outlier", len(model))
	}
	m1, err := core.Model(Query(1), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1) >= len(model)/4 {
		t.Fatalf("Q1 model (%d) should be far smaller than Q7's (%d)", len(m1), len(model))
	}
}

func TestSelfContainment(t *testing.T) {
	s := summary.Build(datagen.XMark(6, 1))
	for i := 1; i <= Count; i++ {
		q1, q2 := Query(i), Query(i)
		ok, err := core.Contained(q1, q2, s)
		if err != nil {
			t.Fatalf("Q%d: %v", i, err)
		}
		if !ok {
			t.Errorf("Q%d not contained in itself", i)
		}
	}
}
