package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"xmlviews/internal/nodeid"
)

// ParseXML reads an XML document from r into the tree model. Element
// attributes become children labeled "@name"; character data is
// space-normalized and concatenated into the enclosing element's Value.
func ParseXML(r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	var doc *Document
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: %v", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			var n *Node
			if doc == nil {
				doc = NewDocument(t.Name.Local)
				n = doc.Root
			} else {
				if len(stack) == 0 {
					return nil, fmt.Errorf("xmltree: multiple root elements")
				}
				n = stack[len(stack)-1].AddChild(t.Name.Local, "")
			}
			for _, a := range t.Attr {
				n.AddChild("@"+a.Name.Local, a.Value)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: unbalanced end element %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) == 0 {
				continue
			}
			text := normalizeSpace(string(t))
			if text == "" {
				continue
			}
			top := stack[len(stack)-1]
			if top.Value == "" {
				top.Value = text
			} else {
				top.Value += " " + text
			}
		}
	}
	if doc == nil {
		return nil, fmt.Errorf("xmltree: empty document")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: unterminated document")
	}
	return doc, nil
}

// ParseXMLString is ParseXML over a string.
func ParseXMLString(s string) (*Document, error) { return ParseXML(strings.NewReader(s)) }

func normalizeSpace(s string) string { return strings.Join(strings.Fields(s), " ") }

// WriteXML serializes the document as XML. Children labeled "@x" are
// emitted as attributes; nodes with both value and children emit the value
// first (the model does not track finer text interleaving).
func (d *Document) WriteXML(w io.Writer) error {
	return writeNode(w, d.Root)
}

// XMLString returns the document serialized as XML.
func (d *Document) XMLString() string {
	var b strings.Builder
	_ = d.WriteXML(&b)
	return b.String()
}

func writeNode(w io.Writer, n *Node) error {
	if _, err := fmt.Fprintf(w, "<%s", n.Label); err != nil {
		return err
	}
	var elemChildren []*Node
	for _, c := range n.Children {
		if strings.HasPrefix(c.Label, "@") {
			if _, err := fmt.Fprintf(w, " %s=%q", c.Label[1:], c.Value); err != nil {
				return err
			}
		} else {
			elemChildren = append(elemChildren, c)
		}
	}
	if n.Value == "" && len(elemChildren) == 0 {
		_, err := io.WriteString(w, "/>")
		return err
	}
	if _, err := io.WriteString(w, ">"); err != nil {
		return err
	}
	if n.Value != "" {
		var esc strings.Builder
		xml.EscapeText(&esc, []byte(n.Value))
		if _, err := io.WriteString(w, esc.String()); err != nil {
			return err
		}
	}
	for _, c := range elemChildren {
		if err := writeNode(w, c); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "</%s>", n.Label)
	return err
}

// ParseParen parses the paper's parenthesized tree notation, e.g.
// `a(b "1" c(d "2" e))`: a label, an optional quoted value, and an optional
// parenthesized child list.
func ParseParen(s string) (*Document, error) {
	p := &parenParser{src: s}
	root, err := p.parseNode(nil)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("xmltree: trailing input at %d in %q", p.pos, s)
	}
	doc := &Document{Root: root}
	return doc, nil
}

// MustParseParen is ParseParen that panics on error (for tests/examples).
func MustParseParen(s string) *Document {
	d, err := ParseParen(s)
	if err != nil {
		panic(err)
	}
	return d
}

type parenParser struct {
	src string
	pos int
}

func (p *parenParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *parenParser) parseNode(parent *Node) (*Node, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isLabelByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("xmltree: expected label at %d in %q", p.pos, p.src)
	}
	label := p.src[start:p.pos]
	var n *Node
	if parent == nil {
		n = &Node{Label: label, ID: nodeid.Root(), PathID: -1}
	} else {
		n = parent.AddChild(label, "")
	}
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '"' {
		end := strings.IndexByte(p.src[p.pos+1:], '"')
		if end < 0 {
			return nil, fmt.Errorf("xmltree: unterminated value at %d in %q", p.pos, p.src)
		}
		n.Value = p.src[p.pos+1 : p.pos+1+end]
		p.pos += end + 2
		p.skipSpace()
	}
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		p.pos++
		for {
			p.skipSpace()
			if p.pos < len(p.src) && p.src[p.pos] == ')' {
				p.pos++
				break
			}
			if p.pos >= len(p.src) {
				return nil, fmt.Errorf("xmltree: missing ')' in %q", p.src)
			}
			if _, err := p.parseNode(n); err != nil {
				return nil, err
			}
		}
	}
	return n, nil
}

func isLabelByte(b byte) bool {
	return b == '@' || b == '_' || b == '-' ||
		(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}
