// Package xmltree implements the paper's data model (Section 2.1): XML
// documents as unranked, labeled, ordered trees. Every node carries a label,
// an optional atomic value, and a Dewey structural identifier from
// internal/nodeid. XML attributes are modeled as children labeled "@name",
// the usual Dataguide convention.
package xmltree

import (
	"fmt"
	"sort"
	"strings"

	"xmlviews/internal/nodeid"
)

// Node is one node of an XML tree. Nodes are created through Document and
// the parsing helpers so that identifiers and parent pointers stay
// consistent.
type Node struct {
	Label    string
	Value    string // concatenated, space-normalized text content directly under the node
	Parent   *Node
	Children []*Node
	ID       nodeid.ID
	// PathID is the summary (Dataguide) node this node maps to, assigned by
	// summary.Build; -1 when no summary has been attached.
	PathID int
}

// Document is a rooted XML tree.
type Document struct {
	Root *Node
	// Name is an optional document name (e.g. the source file), used in
	// diagnostics only.
	Name string
}

// NewDocument creates a document with a fresh root node carrying the given
// label.
func NewDocument(rootLabel string) *Document {
	return &Document{Root: &Node{Label: rootLabel, ID: nodeid.Root(), PathID: -1}}
}

// AddChild appends a new child with the given label and value under parent
// and returns it. The child's Dewey ID is allocated after the last child's,
// so appends keep the children in strictly increasing ID order even after
// careted insertions or deletions reshuffled the sibling list.
func (n *Node) AddChild(label, value string) *Node {
	var id nodeid.ID
	if len(n.Children) == 0 {
		id = n.ID.Child(1)
	} else {
		var err error
		id, err = nodeid.SiblingBetween(n.ID, n.Children[len(n.Children)-1].ID, nil)
		if err != nil {
			panic(fmt.Sprintf("xmltree: sibling allocation under %s: %v", n.ID, err))
		}
	}
	c := &Node{
		Label:  label,
		Value:  value,
		Parent: n,
		ID:     id,
		PathID: -1,
	}
	n.Children = append(n.Children, c)
	return c
}

// Walk visits n and all its descendants in document order. If fn returns
// false the subtree below the current node is skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if n == nil {
		return
	}
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Nodes returns all nodes of the document in document order.
func (d *Document) Nodes() []*Node {
	var out []*Node
	d.Root.Walk(func(n *Node) bool {
		out = append(out, n)
		return true
	})
	return out
}

// Size returns the number of nodes in the document.
func (d *Document) Size() int {
	count := 0
	d.Root.Walk(func(*Node) bool { count++; return true })
	return count
}

// Depth returns the node's depth (root = 1).
func (n *Node) Depth() int { return n.ID.Depth() }

// IsAncestorOf reports whether n is a proper ancestor of other.
func (n *Node) IsAncestorOf(other *Node) bool { return n.ID.IsAncestorOf(other.ID) }

// Path returns the rooted simple path of the node, e.g. "/site/regions/item".
func (n *Node) Path() string {
	var labels []string
	for cur := n; cur != nil; cur = cur.Parent {
		labels = append(labels, cur.Label)
	}
	var b strings.Builder
	for i := len(labels) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(labels[i])
	}
	return b.String()
}

// Subtree returns a deep copy of the subtree rooted at n, as a standalone
// document whose root keeps n's label and value but is re-identified from
// the root ID. It implements the C ("content") attribute of Section 4.4.
func (n *Node) Subtree() *Document {
	d := NewDocument(n.Label)
	d.Root.Value = n.Value
	var copyInto func(src, dst *Node)
	copyInto = func(src, dst *Node) {
		for _, c := range src.Children {
			nc := dst.AddChild(c.Label, c.Value)
			copyInto(c, nc)
		}
	}
	copyInto(n, d.Root)
	return d
}

// String renders the tree in the paper's parenthesized notation, e.g.
// `a(b "1" c(d))`. Values are quoted after the label.
func (n *Node) String() string {
	var b strings.Builder
	n.write(&b)
	return b.String()
}

func (n *Node) write(b *strings.Builder) {
	b.WriteString(n.Label)
	if n.Value != "" {
		fmt.Fprintf(b, " %q", n.Value)
	}
	if len(n.Children) > 0 {
		b.WriteByte('(')
		for i, c := range n.Children {
			if i > 0 {
				b.WriteByte(' ')
			}
			c.write(b)
		}
		b.WriteByte(')')
	}
}

// FindByID returns the node with the given Dewey ID, or nil. It descends
// level by level, binary-searching each child list (children are kept in
// strictly increasing ID order), so it is O(depth · log fanout).
func (d *Document) FindByID(id nodeid.ID) *Node {
	if id.IsNull() || !id.IsWellFormed() || d.Root == nil || !d.Root.ID.Equal(id.AncestorAtDepth(1)) {
		return nil
	}
	cur := d.Root
	for !cur.ID.Equal(id) {
		// The covering child, if any, is the last one with ID <= id.
		i := sort.Search(len(cur.Children), func(i int) bool {
			return cur.Children[i].ID.Compare(id) > 0
		})
		if i == 0 {
			return nil
		}
		c := cur.Children[i-1]
		if !c.ID.Equal(id) && !c.ID.IsAncestorOf(id) {
			return nil
		}
		cur = c
	}
	return cur
}

// SubtreeKeepIDs returns a deep copy of the subtree rooted at n that keeps
// every node's original Dewey ID. Materialized views use it for C
// (content) attributes, so that navigation inside stored content still
// yields structural identifiers usable in joins (Section 4.6 of the paper).
func (n *Node) SubtreeKeepIDs() *Document {
	var copyNode func(src *Node, parent *Node) *Node
	copyNode = func(src *Node, parent *Node) *Node {
		c := &Node{Label: src.Label, Value: src.Value, Parent: parent, ID: src.ID.Clone(), PathID: src.PathID}
		for _, ch := range src.Children {
			c.Children = append(c.Children, copyNode(ch, c))
		}
		return c
	}
	return &Document{Root: copyNode(n, nil)}
}
