package xmltree

import (
	"strings"
	"testing"

	"xmlviews/internal/nodeid"
)

func TestAddChildAssignsIDs(t *testing.T) {
	d := NewDocument("a")
	b := d.Root.AddChild("b", "1")
	c := d.Root.AddChild("c", "")
	e := c.AddChild("e", "2")
	if got := b.ID.String(); got != "1.1" {
		t.Errorf("b.ID = %s, want 1.1", got)
	}
	if got := c.ID.String(); got != "1.3" {
		t.Errorf("c.ID = %s, want 1.3", got)
	}
	if got := e.ID.String(); got != "1.3.1" {
		t.Errorf("e.ID = %s, want 1.3.1", got)
	}
	if e.Parent != c || c.Parent != d.Root {
		t.Error("parent pointers wrong")
	}
	if !d.Root.IsAncestorOf(e) || c.IsAncestorOf(b) {
		t.Error("IsAncestorOf wrong")
	}
}

func TestParseXMLBasics(t *testing.T) {
	doc, err := ParseXMLString(`<site><regions><item id="7"><name>pen</name><price>3.5</price></item></regions></site>`)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.Label != "site" {
		t.Fatalf("root = %s", doc.Root.Label)
	}
	if doc.Size() != 6 {
		t.Fatalf("Size = %d, want 6", doc.Size())
	}
	item := doc.Root.Children[0].Children[0]
	if item.Label != "item" {
		t.Fatalf("item = %s", item.Label)
	}
	if item.Children[0].Label != "@id" || item.Children[0].Value != "7" {
		t.Fatalf("attribute child wrong: %v", item.Children[0])
	}
	name := item.Children[1]
	if name.Label != "name" || name.Value != "pen" {
		t.Fatalf("name wrong: %+v", name)
	}
	if got := name.Path(); got != "/site/regions/item/name" {
		t.Fatalf("Path = %s", got)
	}
}

func TestParseXMLWhitespaceAndMixed(t *testing.T) {
	doc, err := ParseXMLString("<a>\n  hello <b>x</b> world\n</a>")
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.Value != "hello world" {
		t.Fatalf("Value = %q", doc.Root.Value)
	}
}

func TestParseXMLErrors(t *testing.T) {
	for _, s := range []string{"", "<a>", "<a></b>", "<a/><b/>"} {
		if _, err := ParseXMLString(s); err == nil {
			t.Errorf("ParseXMLString(%q) succeeded, want error", s)
		}
	}
}

func TestXMLRoundTrip(t *testing.T) {
	in := `<site><item id="7"><name>pen &amp; ink</name><empty/></item></site>`
	doc, err := ParseXMLString(in)
	if err != nil {
		t.Fatal(err)
	}
	out := doc.XMLString()
	doc2, err := ParseXMLString(out)
	if err != nil {
		t.Fatalf("reparse of %q: %v", out, err)
	}
	if doc.Root.String() != doc2.Root.String() {
		t.Fatalf("round trip changed tree:\n%s\n%s", doc.Root, doc2.Root)
	}
}

func TestParseParen(t *testing.T) {
	doc, err := ParseParen(`a(b "1" c(b "3" d(e "2")) d "4")`)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Size() != 7 {
		t.Fatalf("Size = %d, want 7", doc.Size())
	}
	if doc.Root.Children[1].Children[1].Children[0].Value != "2" {
		t.Fatal("nested value lost")
	}
	back, err := ParseParen(doc.Root.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", doc.Root.String(), err)
	}
	if back.Root.String() != doc.Root.String() {
		t.Fatal("paren round trip failed")
	}
	for _, bad := range []string{"", "(", "a(b", `a(b "x)`, "a b"} {
		if _, err := ParseParen(bad); err == nil {
			t.Errorf("ParseParen(%q) succeeded, want error", bad)
		}
	}
}

func TestFindByID(t *testing.T) {
	doc := MustParseParen(`a(b(c d) e)`)
	for _, n := range doc.Nodes() {
		if got := doc.FindByID(n.ID); got != n {
			t.Fatalf("FindByID(%s) = %v, want %v", n.ID, got, n)
		}
	}
	if doc.FindByID(nodeid.New(1, 9)) != nil {
		t.Error("FindByID of missing node should be nil")
	}
	if doc.FindByID(nil) != nil {
		t.Error("FindByID(null) should be nil")
	}
}

func TestSubtree(t *testing.T) {
	doc := MustParseParen(`a(b(x "9" y) c)`)
	b := doc.Root.Children[0]
	sub := b.Subtree()
	if sub.Root.Label != "b" || sub.Root.ID.String() != "1" {
		t.Fatalf("subtree root wrong: %v %v", sub.Root.Label, sub.Root.ID)
	}
	if sub.Size() != 3 {
		t.Fatalf("subtree size = %d, want 3", sub.Size())
	}
	// Mutating the copy must not affect the original.
	sub.Root.Children[0].Value = "changed"
	if b.Children[0].Value != "9" {
		t.Fatal("Subtree shares nodes with original")
	}
}

func TestNodesDocumentOrder(t *testing.T) {
	doc := MustParseParen(`a(b(c) d(e f))`)
	nodes := doc.Nodes()
	var labels []string
	for _, n := range nodes {
		labels = append(labels, n.Label)
	}
	if got := strings.Join(labels, ""); got != "abcdef" {
		t.Fatalf("document order = %s, want abcdef", got)
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1].ID.Compare(nodes[i].ID) >= 0 {
			t.Fatalf("IDs not increasing at %d: %s >= %s", i, nodes[i-1].ID, nodes[i].ID)
		}
	}
}
