package xmltree

import (
	"fmt"

	"xmlviews/internal/nodeid"
)

// UpdateKind enumerates the typed document updates the maintenance engine
// understands.
type UpdateKind int

const (
	// UpdateInsert inserts a copy of a subtree as a new child of Parent,
	// ordered before the existing child Before (appended when Before is
	// null). The inserted nodes receive fresh caret-allocated Dewey IDs;
	// no existing ID changes.
	UpdateInsert UpdateKind = iota
	// UpdateDelete removes the subtree rooted at Target.
	UpdateDelete
	// UpdateRename relabels the node Target to Label.
	UpdateRename
	// UpdateSetValue replaces the atomic value of Target with Value.
	UpdateSetValue
)

// String returns the surface name of the update kind (the JSON "op").
func (k UpdateKind) String() string {
	switch k {
	case UpdateInsert:
		return "insert"
	case UpdateDelete:
		return "delete"
	case UpdateRename:
		return "rename"
	case UpdateSetValue:
		return "settext"
	}
	return fmt.Sprintf("UpdateKind(%d)", int(k))
}

// Update is one entry of the typed update log.
type Update struct {
	Kind UpdateKind

	// Insert fields.
	Parent  nodeid.ID
	Before  nodeid.ID // null = append after the last child
	Subtree *Document // structure to copy; its IDs are ignored

	// Delete / Rename / SetValue fields.
	Target nodeid.ID
	Label  string // rename
	Value  string // settext
}

// ApplyUpdate applies one update to the document and returns the node the
// update created or modified (the deleted subtree's root for deletions,
// already detached). The document is modified in place; on error it is
// unchanged.
func (d *Document) ApplyUpdate(u Update) (*Node, error) {
	switch u.Kind {
	case UpdateInsert:
		return d.InsertSubtree(u.Parent, u.Before, u.Subtree)
	case UpdateDelete:
		return d.DeleteSubtree(u.Target)
	case UpdateRename:
		return d.RenameNode(u.Target, u.Label)
	case UpdateSetValue:
		return d.SetNodeValue(u.Target, u.Value)
	}
	return nil, fmt.Errorf("xmltree: unknown update kind %d", u.Kind)
}

// InsertSubtree inserts a copy of sub as a child of the node with ID
// parentID, positioned before the existing child with ID beforeID (or as
// the last child when beforeID is null). The new subtree's IDs are
// allocated with nodeid.SiblingBetween, so no existing node is renumbered
// and children stay in document order. Returns the inserted root.
func (d *Document) InsertSubtree(parentID, beforeID nodeid.ID, sub *Document) (*Node, error) {
	if sub == nil || sub.Root == nil {
		return nil, fmt.Errorf("xmltree: insert with empty subtree")
	}
	parent := d.FindByID(parentID)
	if parent == nil {
		return nil, fmt.Errorf("xmltree: insert parent %s not found", parentID)
	}
	pos := len(parent.Children)
	if !beforeID.IsNull() {
		pos = -1
		for i, c := range parent.Children {
			if c.ID.Equal(beforeID) {
				pos = i
				break
			}
		}
		if pos < 0 {
			return nil, fmt.Errorf("xmltree: insert position %s is not a child of %s", beforeID, parentID)
		}
	}
	var left, right nodeid.ID
	if pos > 0 {
		left = parent.Children[pos-1].ID
	}
	if pos < len(parent.Children) {
		right = parent.Children[pos].ID
	}
	id, err := nodeid.SiblingBetween(parent.ID, left, right)
	if err != nil {
		return nil, fmt.Errorf("xmltree: %v", err)
	}
	root := &Node{Label: sub.Root.Label, Value: sub.Root.Value, Parent: parent, ID: id, PathID: -1}
	var copyInto func(src, dst *Node)
	copyInto = func(src, dst *Node) {
		for _, c := range src.Children {
			nc := dst.AddChild(c.Label, c.Value)
			copyInto(c, nc)
		}
	}
	copyInto(sub.Root, root)
	parent.Children = append(parent.Children, nil)
	copy(parent.Children[pos+1:], parent.Children[pos:])
	parent.Children[pos] = root
	return root, nil
}

// DeleteSubtree removes the subtree rooted at the node with the given ID
// and returns its detached root. The document root cannot be deleted.
func (d *Document) DeleteSubtree(id nodeid.ID) (*Node, error) {
	n := d.FindByID(id)
	if n == nil {
		return nil, fmt.Errorf("xmltree: delete target %s not found", id)
	}
	if n.Parent == nil {
		return nil, fmt.Errorf("xmltree: cannot delete the document root")
	}
	sibs := n.Parent.Children
	for i, c := range sibs {
		if c == n {
			n.Parent.Children = append(sibs[:i:i], sibs[i+1:]...)
			n.Parent = nil
			return n, nil
		}
	}
	return nil, fmt.Errorf("xmltree: node %s missing from its parent's child list", id)
}

// RenameNode relabels the node with the given ID.
func (d *Document) RenameNode(id nodeid.ID, label string) (*Node, error) {
	if label == "" {
		return nil, fmt.Errorf("xmltree: rename to empty label")
	}
	n := d.FindByID(id)
	if n == nil {
		return nil, fmt.Errorf("xmltree: rename target %s not found", id)
	}
	n.Label = label
	return n, nil
}

// SetNodeValue replaces the atomic value of the node with the given ID.
func (d *Document) SetNodeValue(id nodeid.ID, value string) (*Node, error) {
	n := d.FindByID(id)
	if n == nil {
		return nil, fmt.Errorf("xmltree: settext target %s not found", id)
	}
	n.Value = value
	return n, nil
}
