package xmltree

import (
	"math/rand"
	"testing"

	"xmlviews/internal/nodeid"
)

func TestInsertSubtreePreservesIDs(t *testing.T) {
	doc := MustParseParen(`a(b "1" c "2")`)
	b, c := doc.Root.Children[0], doc.Root.Children[1]
	bID, cID := b.ID.Clone(), c.ID.Clone()

	// Insert between b and c.
	mid, err := doc.InsertSubtree(doc.Root.ID, c.ID, MustParseParen(`m(x "7")`))
	if err != nil {
		t.Fatal(err)
	}
	if !b.ID.Equal(bID) || !c.ID.Equal(cID) {
		t.Fatalf("existing IDs changed: b=%s c=%s", b.ID, c.ID)
	}
	if !(bID.Compare(mid.ID) < 0 && mid.ID.Compare(cID) < 0) {
		t.Fatalf("inserted ID %s not between %s and %s", mid.ID, bID, cID)
	}
	if !doc.Root.ID.IsParentOf(mid.ID) {
		t.Fatalf("inserted node %s not a child of root", mid.ID)
	}
	if mid.Children[0].Label != "x" || mid.Children[0].Value != "7" {
		t.Fatalf("subtree copy wrong: %s", mid)
	}
	if !mid.ID.IsParentOf(mid.Children[0].ID) {
		t.Fatalf("inserted child %s not under inserted root %s", mid.Children[0].ID, mid.ID)
	}
	if got := doc.Root.String(); got != `a(b "1" m(x "7") c "2")` {
		t.Fatalf("tree = %s", got)
	}
	// Prepend and append.
	first, err := doc.InsertSubtree(doc.Root.ID, b.ID, MustParseParen(`p`))
	if err != nil {
		t.Fatal(err)
	}
	if first.ID.Compare(b.ID) >= 0 {
		t.Fatalf("prepended ID %s not before %s", first.ID, b.ID)
	}
	last, err := doc.InsertSubtree(doc.Root.ID, nil, MustParseParen(`q`))
	if err != nil {
		t.Fatal(err)
	}
	if last.ID.Compare(c.ID) <= 0 {
		t.Fatalf("appended ID %s not after %s", last.ID, c.ID)
	}
	// Every node findable by its ID.
	for _, n := range doc.Nodes() {
		if doc.FindByID(n.ID) != n {
			t.Fatalf("FindByID(%s) broken after insertions", n.ID)
		}
	}
}

func TestInsertSubtreeErrors(t *testing.T) {
	doc := MustParseParen(`a(b)`)
	if _, err := doc.InsertSubtree(nodeid.New(1, 9), nil, MustParseParen(`x`)); err == nil {
		t.Error("missing parent not rejected")
	}
	if _, err := doc.InsertSubtree(doc.Root.ID, nodeid.New(1, 9), MustParseParen(`x`)); err == nil {
		t.Error("missing before-sibling not rejected")
	}
	if _, err := doc.InsertSubtree(doc.Root.ID, nil, nil); err == nil {
		t.Error("nil subtree not rejected")
	}
}

func TestDeleteSubtree(t *testing.T) {
	doc := MustParseParen(`a(b(x) c d)`)
	c := doc.Root.Children[1]
	gone, err := doc.DeleteSubtree(c.ID)
	if err != nil {
		t.Fatal(err)
	}
	if gone.Label != "c" || gone.Parent != nil {
		t.Fatalf("deleted root = %v", gone)
	}
	if got := doc.Root.String(); got != `a(b(x) d)` {
		t.Fatalf("tree = %s", got)
	}
	if doc.FindByID(c.ID) != nil {
		t.Error("deleted node still findable")
	}
	if _, err := doc.DeleteSubtree(doc.Root.ID); err == nil {
		t.Error("root deletion not rejected")
	}
	if _, err := doc.DeleteSubtree(c.ID); err == nil {
		t.Error("double deletion not rejected")
	}
}

func TestRenameAndSetValue(t *testing.T) {
	doc := MustParseParen(`a(b "1")`)
	b := doc.Root.Children[0]
	if _, err := doc.RenameNode(b.ID, "z"); err != nil {
		t.Fatal(err)
	}
	if _, err := doc.SetNodeValue(b.ID, "9"); err != nil {
		t.Fatal(err)
	}
	if got := doc.Root.String(); got != `a(z "9")` {
		t.Fatalf("tree = %s", got)
	}
	if _, err := doc.RenameNode(b.ID, ""); err == nil {
		t.Error("empty label not rejected")
	}
	if _, err := doc.RenameNode(nodeid.New(1, 9), "x"); err == nil {
		t.Error("missing rename target not rejected")
	}
	if _, err := doc.SetNodeValue(nodeid.New(1, 9), "x"); err == nil {
		t.Error("missing settext target not rejected")
	}
}

func TestApplyUpdateDispatch(t *testing.T) {
	doc := MustParseParen(`a(b)`)
	b := doc.Root.Children[0]
	ups := []Update{
		{Kind: UpdateInsert, Parent: b.ID, Subtree: MustParseParen(`c "1"`)},
		{Kind: UpdateRename, Target: b.ID, Label: "bb"},
		{Kind: UpdateSetValue, Target: b.ID, Value: "v"},
	}
	for _, u := range ups {
		if _, err := doc.ApplyUpdate(u); err != nil {
			t.Fatalf("%s: %v", u.Kind, err)
		}
	}
	if got := doc.Root.String(); got != `a(bb "v"(c "1"))` {
		t.Fatalf("tree = %s", got)
	}
	if _, err := doc.ApplyUpdate(Update{Kind: UpdateDelete, Target: b.ID}); err != nil {
		t.Fatal(err)
	}
	if got := doc.Root.String(); got != "a" {
		t.Fatalf("tree = %s", got)
	}
	if _, err := doc.ApplyUpdate(Update{Kind: UpdateKind(99)}); err == nil {
		t.Error("unknown update kind not rejected")
	}
}

// Property: random update storms keep the invariants the rest of the
// system relies on — children in strictly increasing ID order, parent IDs
// derivable by truncation, FindByID total over live nodes.
func TestUpdateStormInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	doc := MustParseParen(`a(b(c "1") d)`)
	labels := []string{"x", "y", "z"}
	for i := 0; i < 800; i++ {
		nodes := doc.Nodes()
		n := nodes[r.Intn(len(nodes))]
		switch r.Intn(4) {
		case 0: // insert at a random position under n
			var before nodeid.ID
			if len(n.Children) > 0 && r.Intn(2) == 0 {
				before = n.Children[r.Intn(len(n.Children))].ID
			}
			sub := NewDocument(labels[r.Intn(len(labels))])
			if r.Intn(2) == 0 {
				sub.Root.AddChild(labels[r.Intn(len(labels))], "v")
			}
			if _, err := doc.InsertSubtree(n.ID, before, sub); err != nil {
				t.Fatalf("insert %d: %v", i, err)
			}
		case 1:
			if n.Parent == nil {
				continue
			}
			if _, err := doc.DeleteSubtree(n.ID); err != nil {
				t.Fatalf("delete %d: %v", i, err)
			}
		case 2:
			if _, err := doc.RenameNode(n.ID, labels[r.Intn(len(labels))]); err != nil {
				t.Fatalf("rename %d: %v", i, err)
			}
		default:
			if _, err := doc.SetNodeValue(n.ID, "w"); err != nil {
				t.Fatalf("settext %d: %v", i, err)
			}
		}
	}
	var prev nodeid.ID
	for _, n := range doc.Nodes() {
		if !n.ID.IsWellFormed() {
			t.Fatalf("ill-formed ID %s", n.ID)
		}
		if prev != nil && prev.Compare(n.ID) >= 0 {
			t.Fatalf("document order broken: %s >= %s", prev, n.ID)
		}
		prev = n.ID
		if n.Parent != nil && !n.ID.Parent().Equal(n.Parent.ID) {
			t.Fatalf("parent of %s derives to %s, want %s", n.ID, n.ID.Parent(), n.Parent.ID)
		}
		if doc.FindByID(n.ID) != n {
			t.Fatalf("FindByID(%s) broken", n.ID)
		}
	}
}
