package xquery

import (
	"testing"

	"xmlviews/internal/pattern"
)

// FuzzXQueryParse asserts two properties over arbitrary input: the
// translator never panics, and every successfully translated query yields
// a pattern whose canonical text re-parses to the same pattern (the
// round-trip the plan cache and the store catalog both rely on).
func FuzzXQueryParse(f *testing.F) {
	seeds := []string{
		`for $x in doc("d")//item return {$x/name/text()}`,
		`for $x in doc("XMark.xml")//item[//mail] return <res> {$x/name} {for $y in $x//listitem return <key> {$y//keyword} </key>} </res>`,
		`for $x in doc("d")//open_auction where $x/initial > 40 return {$x/current/text()}`,
		`for $x in doc("d")//item[price < 30] return {$x/name/text()}`,
		`for $x in doc("d")//person for $y in $x/address return <r>{$y/city/text()}</r>`,
		`for $x in doc("d")/regions/*//item return {$x/name/text()}`,
		`for $x in doc("d")//a[`,
		`for`,
		``,
		`for $x in doc("d")//a where $x/b = "x\"y" return {$x}`,
	}
	for _, s := range seeds {
		f.Add(s, "site")
	}
	f.Fuzz(func(t *testing.T, query, rootLabel string) {
		p, err := Translate(query, rootLabel) // must not panic
		if err != nil {
			return
		}
		src := p.String()
		back, err := pattern.Parse(src)
		if err != nil {
			t.Fatalf("translated pattern %q does not re-parse: %v\nquery: %q", src, err, query)
		}
		if got := back.String(); got != src {
			t.Fatalf("pattern round trip not a fixpoint: %q -> %q\nquery: %q", src, got, query)
		}
	})
}
