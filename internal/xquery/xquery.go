// Package xquery translates a nested-FLWR XQuery subset into the extended
// tree pattern language, following the Section 1 example of the paper:
//
//	for $x in doc("XMark.xml")//item[//mail] return
//	  <res> {$x/name/text(),
//	         for $y in $x//listitem return <key> {$y//keyword} </key>} </res>
//
// becomes a single pattern with optional and nested edges:
//
//	site(//item[id](//mail ?/name[v] n?//listitem[id](n?//keyword[c])))
//
// Supported subset:
//
//   - for $v in (doc("...")|$w) step+ [pred]* (where path cmp literal)?
//     return returnExpr
//   - steps: /name, //name, /*, //*
//   - predicates: [relative-path] (existential) and
//     [relative-path cmp literal] with cmp ∈ {=, !=, <, <=, >, >=}
//   - returnExpr: <tag> { item ("," item)* } </tag> or a single item
//   - item: relative path (stores C), relative path/text() (stores V), or
//     a nested FLWR
//
// Each for-variable's binding node stores the structural ID, outer-for
// bindings are required, and return-item paths become optional edges (an
// XQuery return produces output even when a path is empty); nested FLWRs
// become nested optional edges, which is exactly what lets one view serve
// nested FLWR blocks (Section 1).
package xquery

import (
	"fmt"
	"strings"

	"xmlviews/internal/pattern"
	"xmlviews/internal/predicate"
)

// Translate parses the query and produces the equivalent tree pattern.
// rootLabel is the document root element (patterns are rooted; XQuery's
// doc() does not name the root when the first step is //).
func Translate(query, rootLabel string) (*pattern.Pattern, error) {
	if !pattern.IsValidLabel(rootLabel) {
		return nil, fmt.Errorf("xquery: invalid document root label %q", rootLabel)
	}
	p := &parser{toks: lex(query)}
	pat := pattern.NewPattern(rootLabel)
	if err := p.flwr(pat, pat.Root, false); err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("xquery: trailing input near %q", p.peek())
	}
	pat.Finish()
	if pat.Arity() == 0 {
		return nil, fmt.Errorf("xquery: query stores no data")
	}
	return pat, nil
}

// MustTranslate is Translate that panics on error.
func MustTranslate(query, rootLabel string) *pattern.Pattern {
	p, err := Translate(query, rootLabel)
	if err != nil {
		panic(err)
	}
	return p
}

// --- lexer ---

type token struct {
	kind string // ident, var, str, punct
	text string
}

func lex(src string) []token {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '$':
			j := i + 1
			for j < len(src) && isIdent(src[j]) {
				j++
			}
			toks = append(toks, token{"var", src[i+1 : j]})
			i = j
		case c == '"' || c == '\'':
			j := strings.IndexByte(src[i+1:], c)
			if j < 0 {
				toks = append(toks, token{"str", src[i+1:]})
				i = len(src)
			} else {
				toks = append(toks, token{"str", src[i+1 : i+1+j]})
				i += j + 2
			}
		case isIdent(c):
			j := i
			for j < len(src) && isIdent(src[j]) {
				j++
			}
			toks = append(toks, token{"ident", src[i:j]})
			i = j
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			toks = append(toks, token{"punct", "//"})
			i += 2
		case c == '<' && i+1 < len(src) && src[i+1] == '/':
			toks = append(toks, token{"punct", "</"})
			i += 2
		case (c == '<' || c == '>' || c == '!') && i+1 < len(src) && src[i+1] == '=':
			toks = append(toks, token{"punct", src[i : i+2]})
			i += 2
		default:
			toks = append(toks, token{"punct", string(c)})
			i++
		}
	}
	return toks
}

func isIdent(c byte) bool {
	return c == '_' || c == '-' || c == '.' || c == '@' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// --- parser ---

type parser struct {
	toks []token
	pos  int
	vars map[string]*pattern.Node
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() string {
	if p.eof() {
		return "<eof>"
	}
	return p.toks[p.pos].text
}

func (p *parser) accept(kind, text string) bool {
	if p.eof() || p.toks[p.pos].kind != kind || p.toks[p.pos].text != text {
		return false
	}
	p.pos++
	return true
}

func (p *parser) expect(kind, text string) error {
	if !p.accept(kind, text) {
		return fmt.Errorf("xquery: expected %q, found %q", text, p.peek())
	}
	return nil
}

func (p *parser) next() (token, error) {
	if p.eof() {
		return token{}, fmt.Errorf("xquery: unexpected end of query")
	}
	t := p.toks[p.pos]
	p.pos++
	return t, nil
}

// flwr parses one for-in-return block. The bound variable's node hangs
// under ctx (or under the variable it navigates from); nested FLWRs make
// the binding edge optional and nested.
func (p *parser) flwr(pat *pattern.Pattern, root *pattern.Node, nested bool) error {
	if err := p.expect("ident", "for"); err != nil {
		return err
	}
	v, err := p.next()
	if err != nil {
		return err
	}
	if v.kind != "var" {
		return fmt.Errorf("xquery: expected variable after 'for', found %q", v.text)
	}
	if err := p.expect("ident", "in"); err != nil {
		return err
	}
	base, err := p.pathBase(pat, root)
	if err != nil {
		return err
	}
	bind, firstEdge, err := p.steps(pat, base)
	if err != nil {
		return err
	}
	if bind == base {
		return fmt.Errorf("xquery: empty binding path for $%s", v.text)
	}
	if nested && firstEdge != nil {
		firstEdge.Optional = true
		firstEdge.Nested = true
	}
	bind.Attrs |= pattern.AttrID
	if p.vars == nil {
		p.vars = map[string]*pattern.Node{}
	}
	p.vars[v.text] = bind

	if p.accept("ident", "where") {
		if err := p.whereClause(pat); err != nil {
			return err
		}
	}
	if err := p.expect("ident", "return"); err != nil {
		return err
	}
	return p.returnExpr(pat, bind)
}

// pathBase resolves the start of a path: doc("...") is the pattern root, a
// variable is its bound node.
func (p *parser) pathBase(pat *pattern.Pattern, root *pattern.Node) (*pattern.Node, error) {
	if p.accept("ident", "doc") {
		if err := p.expect("punct", "("); err != nil {
			return nil, err
		}
		if t, err := p.next(); err != nil || t.kind != "str" {
			return nil, fmt.Errorf("xquery: doc() expects a string")
		}
		if err := p.expect("punct", ")"); err != nil {
			return nil, err
		}
		return root, nil
	}
	if !p.eof() && p.toks[p.pos].kind == "var" {
		name := p.toks[p.pos].text
		p.pos++
		n, ok := p.vars[name]
		if !ok {
			return nil, fmt.Errorf("xquery: unbound variable $%s", name)
		}
		return n, nil
	}
	return root, nil
}

// steps parses /a//b[...] navigation under base, returning the final node
// and the first edge created (for optional/nested marking).
func (p *parser) steps(pat *pattern.Pattern, base *pattern.Node) (*pattern.Node, *pattern.Node, error) {
	cur := base
	var first *pattern.Node
	for {
		var axis pattern.Axis
		if p.accept("punct", "//") {
			axis = pattern.Descendant
		} else if p.accept("punct", "/") {
			axis = pattern.Child
		} else {
			break
		}
		// text() ends the path; handled by the caller via lookahead.
		if !p.eof() && p.toks[p.pos].kind == "ident" && p.toks[p.pos].text == "text" {
			p.pos-- // give the '/' back
			break
		}
		label := pattern.Wildcard
		if !p.accept("punct", "*") {
			t, err := p.next()
			if err != nil {
				return nil, nil, err
			}
			if t.kind != "ident" {
				return nil, nil, fmt.Errorf("xquery: expected step name, found %q", t.text)
			}
			if !pattern.IsValidLabel(t.text) {
				return nil, nil, fmt.Errorf("xquery: step name %q is not a valid pattern label", t.text)
			}
			label = t.text
		}
		n := pat.AddChild(cur, label, axis)
		if first == nil {
			first = n
		}
		cur = n
		for p.accept("punct", "[") {
			if err := p.predicate(pat, cur); err != nil {
				return nil, nil, err
			}
		}
	}
	return cur, first, nil
}

// predicate parses [path] or [path cmp literal] as a required subtree.
// Predicate paths are relative: a leading name is a child step.
func (p *parser) predicate(pat *pattern.Pattern, ctx *pattern.Node) error {
	cur := ctx
	if !p.eof() && p.toks[p.pos].kind == "ident" {
		t, _ := p.next()
		if !pattern.IsValidLabel(t.text) {
			return fmt.Errorf("xquery: predicate step %q is not a valid pattern label", t.text)
		}
		cur = pat.AddChild(cur, t.text, pattern.Child)
	}
	end, _, err := p.steps(pat, cur)
	if err != nil {
		return err
	}
	if end == ctx {
		return fmt.Errorf("xquery: empty predicate path")
	}
	for _, op := range []string{"=", "!=", "<=", ">=", "<", ">"} {
		if p.accept("punct", op) {
			lit, err := p.next()
			if err != nil {
				return err
			}
			if lit.kind != "str" && lit.kind != "ident" {
				return fmt.Errorf("xquery: expected literal after %s", op)
			}
			end.Pred = cmpFormula(op, lit)
			break
		}
	}
	return p.expect("punct", "]")
}

func cmpFormula(op string, lit token) predicate.Formula {
	a := predicate.ParseAtom(lit.text)
	switch op {
	case "=":
		return predicate.Eq(a)
	case "!=":
		return predicate.Ne(a)
	case "<":
		return predicate.Lt(a)
	case "<=":
		return predicate.Le(a)
	case ">":
		return predicate.Gt(a)
	default:
		return predicate.Ge(a)
	}
}

// whereClause parses `where $v/path cmp literal` (or a bare existential
// path) as a required subtree of the variable's node.
func (p *parser) whereClause(pat *pattern.Pattern) error {
	base, err := p.pathBase(pat, nil)
	if err != nil {
		return err
	}
	if base == nil {
		return fmt.Errorf("xquery: where clause must start from a variable")
	}
	end, _, err := p.steps(pat, base)
	if err != nil {
		return err
	}
	for _, op := range []string{"=", "!=", "<=", ">=", "<", ">"} {
		if p.accept("punct", op) {
			lit, err := p.next()
			if err != nil {
				return err
			}
			end.Pred = cmpFormula(op, lit)
			return nil
		}
	}
	return nil
}

// returnExpr parses an element constructor or a single item list.
func (p *parser) returnExpr(pat *pattern.Pattern, ctx *pattern.Node) error {
	if p.accept("punct", "<") {
		tag, err := p.next()
		if err != nil {
			return err
		}
		if err := p.expect("punct", ">"); err != nil {
			return err
		}
		if err := p.expect("punct", "{"); err != nil {
			return err
		}
		if err := p.itemList(pat, ctx); err != nil {
			return err
		}
		if err := p.expect("punct", "}"); err != nil {
			return err
		}
		if err := p.expect("punct", "</"); err != nil {
			return err
		}
		if err := p.expect("ident", tag.text); err != nil {
			return err
		}
		return p.expect("punct", ">")
	}
	if p.accept("punct", "{") {
		if err := p.itemList(pat, ctx); err != nil {
			return err
		}
		return p.expect("punct", "}")
	}
	return p.item(pat, ctx)
}

func (p *parser) itemList(pat *pattern.Pattern, ctx *pattern.Node) error {
	for {
		if err := p.item(pat, ctx); err != nil {
			return err
		}
		if !p.accept("punct", ",") {
			return nil
		}
	}
}

// item parses one returned item: a nested FLWR or a path from a variable,
// optionally ending in /text().
func (p *parser) item(pat *pattern.Pattern, ctx *pattern.Node) error {
	if !p.eof() && p.toks[p.pos].kind == "ident" && p.toks[p.pos].text == "for" {
		return p.flwr(pat, ctx, true)
	}
	base, err := p.pathBase(pat, ctx)
	if err != nil {
		return err
	}
	end, first, err := p.steps(pat, base)
	if err != nil {
		return err
	}
	isText := false
	if p.accept("punct", "/") {
		if err := p.expect("ident", "text"); err != nil {
			return err
		}
		if err := p.expect("punct", "("); err != nil {
			return err
		}
		if err := p.expect("punct", ")"); err != nil {
			return err
		}
		isText = true
	}
	if end == base {
		// The variable itself is returned: store its content.
		if isText {
			end.Attrs |= pattern.AttrValue
		} else {
			end.Attrs |= pattern.AttrContent
		}
		return nil
	}
	if first != nil {
		// A return produces output even for empty paths, and groups all
		// matches into the constructed element: optional and nested.
		first.Optional = true
		first.Nested = true
	}
	if isText {
		end.Attrs |= pattern.AttrValue
	} else {
		end.Attrs |= pattern.AttrContent
	}
	return nil
}
