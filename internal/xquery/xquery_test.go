package xquery

import (
	"strings"
	"testing"

	"xmlviews/internal/pattern"
)

func TestPaperIntroQuery(t *testing.T) {
	q := `for $x in doc("XMark.xml")//item[//mail] return
	  <res> {$x/name/text(),
	         for $y in $x//listitem return <key> {$y//keyword} </key>} </res>`
	p, err := Translate(q, "site")
	if err != nil {
		t.Fatal(err)
	}
	// Expected shape: site(//item[id](//mail n?/name[v] n?//listitem[id](n?//keyword[c])))
	if p.Root.Label != "site" {
		t.Fatalf("root = %s", p.Root.Label)
	}
	item := p.Root.Children[0]
	if item.Label != "item" || item.Axis != pattern.Descendant || !item.Attrs.Has(pattern.AttrID) {
		t.Fatalf("item node wrong: %s", p)
	}
	var mail, name, listitem *pattern.Node
	for _, c := range item.Children {
		switch c.Label {
		case "mail":
			mail = c
		case "name":
			name = c
		case "listitem":
			listitem = c
		}
	}
	if mail == nil || mail.Optional {
		t.Fatalf("mail must be required: %s", p)
	}
	if name == nil || !name.Optional || !name.Nested || !name.Attrs.Has(pattern.AttrValue) {
		t.Fatalf("name must be optional with V: %s", p)
	}
	if listitem == nil || !listitem.Optional || !listitem.Nested || !listitem.Attrs.Has(pattern.AttrID) {
		t.Fatalf("listitem must be nested optional: %s", p)
	}
	kw := listitem.Children[0]
	if kw.Label != "keyword" || !kw.Nested || !kw.Optional || !kw.Attrs.Has(pattern.AttrContent) {
		t.Fatalf("keyword wrong: %s", p)
	}
}

func TestWhereClause(t *testing.T) {
	p, err := Translate(`for $x in doc("d")//open_auction where $x/initial > 40 return {$x/current/text()}`, "site")
	if err != nil {
		t.Fatal(err)
	}
	oa := p.Root.Children[0]
	var initial *pattern.Node
	for _, c := range oa.Children {
		if c.Label == "initial" {
			initial = c
		}
	}
	if initial == nil || initial.Pred.IsTrue() || initial.Optional {
		t.Fatalf("where clause not translated: %s", p)
	}
}

func TestValuePredicateInBrackets(t *testing.T) {
	p, err := Translate(`for $x in doc("d")//item[price < 30] return {$x/name/text()}`, "site")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.String(), "price") || !strings.Contains(p.String(), "v<30") {
		t.Fatalf("predicate lost: %s", p)
	}
}

func TestVariableNavigation(t *testing.T) {
	p, err := Translate(
		`for $x in doc("d")//person for $y in $x/address return <r>{$y/city/text()}</r>`, "site")
	if err == nil {
		// A second top-level for over a bound variable is not in the
		// subset; only nested FLWRs inside return are. Translation
		// succeeding is fine as long as the shape is sane; but the current
		// grammar treats this as trailing input.
		_ = p
		t.Skip("sequential for accepted by grammar")
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		``,
		`for`,
		`for x in doc("d")//a return {$x}`,
		`for $x in doc("d") return {$x/a}`,
		`for $x in doc("d")//a return <r>{$y/b}</r>`,
		`for $x in doc("d")//a return <r>{$x/b}</q>`,
		`for $x in doc("d")//a[`,
	}
	for _, src := range cases {
		if _, err := Translate(src, "site"); err == nil {
			t.Errorf("Translate(%q) succeeded, want error", src)
		}
	}
}

func TestWildcardStep(t *testing.T) {
	p, err := Translate(`for $x in doc("d")/regions/*//item return {$x/name/text()}`, "site")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.String(), "*") {
		t.Fatalf("wildcard lost: %s", p)
	}
}

func TestReturnVariableContent(t *testing.T) {
	p, err := Translate(`for $x in doc("d")//keyword return {$x}`, "site")
	if err != nil {
		t.Fatal(err)
	}
	kw := p.Root.Children[0]
	if !kw.Attrs.Has(pattern.AttrContent) || !kw.Attrs.Has(pattern.AttrID) {
		t.Fatalf("returned variable should store ID and C: %s", p)
	}
}
