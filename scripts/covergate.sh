#!/bin/sh
# covergate.sh — fail if total statement coverage drops below the
# checked-in floor (scripts/coverage_floor.txt).
#
#   go test -coverprofile=cover.out ./...
#   scripts/covergate.sh cover.out
set -eu

profile="${1:-cover.out}"
floor_file="$(dirname "$0")/coverage_floor.txt"
floor="$(cat "$floor_file")"

total="$(go tool cover -func="$profile" | awk '/^total:/ {gsub(/%/, "", $3); print $3}')"
if [ -z "$total" ]; then
    echo "covergate: no total line in $profile" >&2
    exit 2
fi

ok="$(awk -v t="$total" -v f="$floor" 'BEGIN { print (t >= f) ? 1 : 0 }')"
echo "total coverage ${total}% (floor ${floor}%)"
if [ "$ok" != 1 ]; then
    echo "covergate: coverage ${total}% is below the floor ${floor}%" >&2
    exit 1
fi
