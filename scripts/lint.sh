#!/usr/bin/env bash
# lint.sh — the project's single lint entry point; CI runs this file
# verbatim (.github/workflows/ci.yml, job "lint"), so a local run means
# exactly what CI will say.
#
#   scripts/lint.sh                      run xvlint + staticcheck + govulncheck
#   XVLINT_ONLY=1 scripts/lint.sh        skip the external tools
#   XVLINT_SARIF=out.sarif scripts/lint.sh   also write xvlint findings as SARIF
#
# xvlint (cmd/xvlint) is the in-repo invariant checker — determinism,
# lock discipline, cancellation polls, persist-path errors, shared-extent
# mutation, snapshot discipline, metric/stats surfaces and format-version
# gates; see docs/lint.md. It builds with the standard library alone and
# must be run from inside the module (its loader type-checks from source).
#
# staticcheck and govulncheck are version-pinned below. They are not
# vendored: when a binary is absent locally we warn and skip, but CI
# installs both and hard-fails if an install breaks, so the pins cannot
# silently rot.
set -euo pipefail
cd "$(dirname "$0")/.."

STATICCHECK_VERSION="2024.1.1" # last line compatible with go 1.21 sources
GOVULNCHECK_VERSION="v1.1.3"   # pinned so CI runs don't shift under us

echo "== xvlint =="
if [ -n "${XVLINT_SARIF:-}" ]; then
    # One invocation produces both the human text and the SARIF log, so
    # the two can never disagree about what was found.
    go run ./cmd/xvlint -sarif "${XVLINT_SARIF}" ./...
else
    go run ./cmd/xvlint ./...
fi

if [ "${XVLINT_ONLY:-0}" = "1" ]; then
    exit 0
fi

echo "== staticcheck ${STATICCHECK_VERSION} =="
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
elif [ "${CI:-false}" = "true" ]; then
    echo "staticcheck missing in CI (the workflow installs it before calling this script)" >&2
    exit 1
else
    echo "staticcheck not installed; skipping locally." >&2
    echo "install: go install honnef.co/go/tools/cmd/staticcheck@${STATICCHECK_VERSION}" >&2
fi

echo "== govulncheck ${GOVULNCHECK_VERSION} =="
if command -v govulncheck >/dev/null 2>&1; then
    govulncheck ./...
elif [ "${CI:-false}" = "true" ]; then
    echo "govulncheck missing in CI (the workflow installs it before calling this script)" >&2
    exit 1
else
    echo "govulncheck not installed; skipping locally." >&2
    echo "install: go install golang.org/x/vuln/cmd/govulncheck@${GOVULNCHECK_VERSION}" >&2
fi
