#!/usr/bin/env bash
# lint.sh — the project's single lint entry point; CI runs this file
# verbatim (.github/workflows/ci.yml, job "lint"), so a local run means
# exactly what CI will say.
#
#   scripts/lint.sh            run xvlint + staticcheck (if available)
#   XVLINT_ONLY=1 scripts/lint.sh   skip staticcheck
#
# xvlint (cmd/xvlint) is the in-repo invariant checker — determinism,
# lock discipline, cancellation polls, persist-path errors; see
# docs/lint.md. It builds with the standard library alone and must be run
# from inside the module (its loader type-checks from source).
#
# staticcheck is version-pinned below. It is not vendored: when the
# binary is absent locally we warn and skip, but CI installs it and
# hard-fails if that install breaks, so the pin cannot silently rot.
set -euo pipefail
cd "$(dirname "$0")/.."

STATICCHECK_VERSION="2024.1.1" # last line compatible with go 1.21 sources

echo "== xvlint =="
go run ./cmd/xvlint ./...

if [ "${XVLINT_ONLY:-0}" = "1" ]; then
    exit 0
fi

echo "== staticcheck ${STATICCHECK_VERSION} =="
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
elif [ "${CI:-false}" = "true" ]; then
    echo "staticcheck missing in CI (the workflow installs it before calling this script)" >&2
    exit 1
else
    echo "staticcheck not installed; skipping locally." >&2
    echo "install: go install honnef.co/go/tools/cmd/staticcheck@${STATICCHECK_VERSION}" >&2
fi
