#!/usr/bin/env bash
# obs_smoke.sh — end-to-end observability smoke test.
#
# Builds the real binaries, generates an XMark document, materializes a
# store, boots xvserve with the observability flags on (slow-query log,
# debug listener), drives queries and an update over HTTP, then asserts:
#
#   - GET /metrics serves the key series with non-zero values,
#     including the per-view read counter and a latency histogram count;
#   - the slow-query log captured structured lines (threshold 1ns);
#   - the debug listener serves /debug/pprof/ and /debug/traces,
#     and the public listener does NOT serve the profiler;
#   - `xvstore stats` scrapes the live daemon.
#
# CI runs this after the unit tests; it needs nothing beyond the Go
# toolchain, curl and a POSIX shell.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

mkdir -p "$tmp/bin"
go build -o "$tmp/bin" ./cmd/xvgen ./cmd/xvstore ./cmd/xvserve

"$tmp/bin/xvgen" -corpus xmark -scale 1 >"$tmp/doc.xml"
"$tmp/bin/xvstore" build -doc "$tmp/doc.xml" -out "$tmp/store" \
    -v 'VNAME=site(//item[id](/name[v]))' >/dev/null

# -maxrewritings 2 keeps the cold-query search short: the smoke test
# exercises the observability surfaces, not the rewriting enumerator.
"$tmp/bin/xvserve" -dir "$tmp/store" -addr 127.0.0.1:0 -maxrewritings 2 \
    -debugaddr 127.0.0.1:0 -slowquery 1ns -log "$tmp/slow.log" \
    >"$tmp/serve.log" &
pid=$!

# The daemon announces both listeners, one per line, with ephemeral ports.
addr="" debug=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^xvserve: serving .* on //p' "$tmp/serve.log")
    debug=$(sed -n 's/^xvserve: debug listener .* on //p' "$tmp/serve.log")
    [ -n "$addr" ] && [ -n "$debug" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "obs_smoke: daemon died:"; cat "$tmp/serve.log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] && [ -n "$debug" ] || { echo "obs_smoke: daemon never announced its listeners"; exit 1; }

# Drive the pipeline: two queries (miss then hit), one traced, one update.
curl -fsS -G --data-urlencode 'q=site(//item[id](/name[v]))' "http://$addr/query" >/dev/null
traced=$(curl -fsS -G --data-urlencode 'q=site(//item[id](/name[v]))' --data-urlencode 'trace=1' \
    "http://$addr/query")
# A value predicate the view does not store runs as a selection over the
# scan — the vectorized kernel path — and must report exec_path.
vec=$(curl -fsS -G --data-urlencode 'q=site(//item[id](/name[v]{v!=""}))' "http://$addr/query")
case "$vec" in
*'"exec_path":"vectorized"'*) ;;
*) echo "obs_smoke: selective query did not run vectorized: $vec"; exit 1 ;;
esac
case "$traced" in
*'"trace"'*) ;;
*) echo "obs_smoke: trace=1 returned no trace"; exit 1 ;;
esac
curl -fsS -X POST -d '[{"op":"insert","parent":"1","subtree":"item(name \"smoke\")"}]' \
    "http://$addr/update" >/dev/null
# Three concurrent writers exercise the group-commit path (they may merge
# into one epoch or commit as several groups; either way the committer's
# instruments must fire). Wait on the curls by pid — a bare `wait` would
# also wait on the daemon.
writers=""
for i in 1 2 3; do
    curl -fsS -X POST -d '[{"op":"insert","parent":"1","subtree":"item(name \"grp'"$i"'\")"}]' \
        "http://$addr/update" >/dev/null &
    writers="$writers $!"
done
for w in $writers; do wait "$w"; done

# Key series must be present and non-zero on the scrape.
metrics=$(curl -fsS "http://$addr/metrics")
for series in \
    'xvserve_queries_total' \
    'xvserve_rows_served_total' \
    'xvserve_rewrites_run_total' \
    'xvserve_updates_applied_total' \
    'xvserve_tuples_added_total' \
    'xvserve_rewrite_seconds_count' \
    'xvserve_exec_seconds_count' \
    'xvserve_maintain_seconds_count' \
    'xvserve_group_commits_total' \
    'xvserve_commit_group_size_count' \
    'xvserve_commit_group_size_sum' \
    'xvserve_commit_queue_wait_seconds_count' \
    'xvserve_view_reads_total{view="VNAME"}' \
    'xvserve_vec_kernels_total{kernel="select_value"}' \
    'xvserve_vec_blocks_scanned_total' \
    'xvserve_http_requests_total{path="/query",code="200"}' \
    'go_goroutines'; do
    val=$(printf '%s\n' "$metrics" | awk -v s="$series" '$1 == s { print $2 }')
    case "$val" in
    '' | 0) echo "obs_smoke: series $series missing or zero (got '$val')"; exit 1 ;;
    esac
done

# Threshold 1ns: every pipeline request logged exactly one slog JSON line
# (3 queries + 4 updates).
lines=$(wc -l <"$tmp/slow.log")
[ "$lines" -eq 7 ] || { echo "obs_smoke: want 7 slow-log lines, got $lines:"; cat "$tmp/slow.log"; exit 1; }
grep -q '"request_id"' "$tmp/slow.log" || { echo "obs_smoke: slow log lacks request ids"; exit 1; }

# Debug listener: profiler, metrics and traces live there...
curl -fsS "http://$debug/debug/pprof/" >/dev/null
curl -fsS "http://$debug/metrics" >"$tmp/debug_metrics"
grep -q '^xvserve_queries_total' "$tmp/debug_metrics" \
    || { echo "obs_smoke: debug /metrics empty"; exit 1; }
curl -fsS "http://$debug/debug/traces" >"$tmp/traces.json"
grep -q '"request_id"' "$tmp/traces.json" \
    || { echo "obs_smoke: /debug/traces has no records"; exit 1; }
# ...and the profiler must NOT leak onto the public listener.
if curl -fsS "http://$addr/debug/pprof/" >/dev/null 2>&1; then
    echo "obs_smoke: pprof exposed on the public listener"
    exit 1
fi

# The CLI scraper summarizes the same daemon. (Capture, then grep: under
# pipefail a quitting `grep -q` would SIGPIPE the scraper.)
summary=$("$tmp/bin/xvstore" stats -addr "$addr")
printf '%s\n' "$summary" | grep -q 'phase latencies' \
    || { echo "obs_smoke: xvstore stats printed no quantiles"; exit 1; }
printf '%s\n' "$summary" | grep -q 'commit groups:' \
    || { echo "obs_smoke: xvstore stats printed no commit-group summary"; exit 1; }

echo "obs_smoke: OK"
