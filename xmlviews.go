// Package xmlviews is a Go implementation of "Structured Materialized
// Views for XML Queries" (Manolescu, Benzaken, Arion, Papakonstantinou;
// VLDB 2007 / INRIA report inria-00001233): containment and rewriting of
// extended tree pattern queries under structural summary (Dataguide)
// constraints, with materialized view storage and an algebraic executor.
//
// The package is a façade over the implementation packages:
//
//	internal/xmltree    XML data model (unranked labeled ordered trees)
//	internal/nodeid     Dewey structural identifiers
//	internal/summary    path summaries / enhanced Dataguides
//	internal/pattern    the extended tree pattern language
//	internal/predicate  value predicate formulas
//	internal/core       canonical models, containment, rewriting
//	internal/view       view materialization (in-memory and disk-backed)
//	internal/store      persistent columnar segments + catalog manifest
//	internal/maintain   incremental view maintenance under updates
//	internal/algebra    plan execution
//	internal/xquery     XQuery-subset front end
//	internal/serve      the xvserve HTTP query daemon
//
// # Quick start
//
//	doc, _ := xmlviews.ParseXML(file)
//	s := xmlviews.BuildSummary(doc)
//	v := xmlviews.NewView("v1", xmlviews.MustParsePattern(`site(//item[id](/name[v]))`))
//	q := xmlviews.MustParsePattern(`site(//item[id](/name[v]))`)
//	res, _ := xmlviews.Rewrite(q, []*xmlviews.View{v}, s)
//	store := xmlviews.NewStore(doc, []*xmlviews.View{v})
//	out, _ := xmlviews.Execute(res.Rewritings[0], store)
package xmlviews

import (
	"io"
	"net/http"

	"xmlviews/internal/algebra"
	"xmlviews/internal/core"
	"xmlviews/internal/cost"
	"xmlviews/internal/maintain"
	"xmlviews/internal/nrel"
	"xmlviews/internal/pattern"
	"xmlviews/internal/serve"
	"xmlviews/internal/store"
	"xmlviews/internal/summary"
	"xmlviews/internal/view"
	"xmlviews/internal/xmltree"
	"xmlviews/internal/xquery"
)

// Document is an XML document in the tree data model.
type Document = xmltree.Document

// Summary is a path summary (enhanced Dataguide).
type Summary = summary.Summary

// Pattern is an extended tree pattern: the view/query language.
type Pattern = pattern.Pattern

// View is a materialized view definition.
type View = core.View

// Plan is a logical algebraic plan over views.
type Plan = core.Plan

// RewriteResult reports the rewritings found and timing statistics.
type RewriteResult = core.RewriteResult

// RewriteOptions tunes the rewriting search.
type RewriteOptions = core.RewriteOptions

// Store holds materialized view extents for a document.
type Store = view.Store

// Result is an executed plan's relation.
type Result = algebra.Result

// Relation is a (possibly nested) table of values.
type Relation = nrel.Relation

// Tree is a canonical tree: a containment witness.
type Tree = core.Tree

// ParseXML reads an XML document into the tree model.
func ParseXML(r io.Reader) (*Document, error) { return xmltree.ParseXML(r) }

// ParseXMLString parses an XML document from a string.
func ParseXMLString(s string) (*Document, error) { return xmltree.ParseXMLString(s) }

// BuildSummary constructs the enhanced path summary of a document and
// annotates the document's nodes with their summary paths.
func BuildSummary(doc *Document) *Summary { return summary.Build(doc) }

// ParseSummary parses the parenthesized summary notation ("a(!b(c) =d)").
func ParseSummary(src string) (*Summary, error) { return summary.Parse(src) }

// ParsePattern parses the tree pattern surface syntax, e.g.
// `site(//item[id,v]{v>3}(/name[v] n?//listitem[c]))`.
func ParsePattern(src string) (*Pattern, error) { return pattern.Parse(src) }

// MustParsePattern is ParsePattern that panics on error.
func MustParsePattern(src string) *Pattern { return pattern.MustParse(src) }

// TranslateXQuery translates a nested-FLWR XQuery into a tree pattern.
func TranslateXQuery(query, rootLabel string) (*Pattern, error) {
	return xquery.Translate(query, rootLabel)
}

// NewView creates a view over a pattern; IDs are Dewey, so parent IDs are
// derivable (virtual IDs are available to the rewriter).
func NewView(name string, p *Pattern) *View {
	return &View{Name: name, Pattern: p, DerivableParentIDs: true}
}

// Contained decides p ⊆S q: on every document conforming to the summary,
// p's result is a subset of q's.
func Contained(p, q *Pattern, s *Summary) (bool, error) { return core.Contained(p, q, s) }

// ContainedInUnion decides p ⊆S q1 ∪ ... ∪ qm.
func ContainedInUnion(p *Pattern, qs []*Pattern, s *Summary) (bool, error) {
	return core.ContainedInUnion(p, qs, s)
}

// Equivalent decides p ≡S q.
func Equivalent(p, q *Pattern, s *Summary) (bool, error) { return core.Equivalent(p, q, s) }

// Satisfiable reports whether the pattern can match any document
// conforming to the summary.
func Satisfiable(p *Pattern, s *Summary) (bool, error) { return core.Satisfiable(p, s) }

// CanonicalModel computes mod_S(p), the canonical model of a pattern.
func CanonicalModel(p *Pattern, s *Summary) ([]*Tree, error) { return core.Model(p, s) }

// DefaultRewriteOptions returns the default rewriting configuration.
func DefaultRewriteOptions() RewriteOptions { return core.DefaultRewriteOptions() }

// Rewrite finds the view-based rewritings of q that are S-equivalent to it
// (Algorithm 1 of the paper).
func Rewrite(q *Pattern, views []*View, s *Summary) (*RewriteResult, error) {
	return core.Rewrite(q, views, s, core.DefaultRewriteOptions())
}

// RewriteWith is Rewrite with explicit options.
func RewriteWith(q *Pattern, views []*View, s *Summary, opts RewriteOptions) (*RewriteResult, error) {
	return core.Rewrite(q, views, s, opts)
}

// NewStore materializes the views over a document.
func NewStore(doc *Document, views []*View) *Store { return view.NewStore(doc, views) }

// Materialize evaluates one view over a document (nested form, Figure 1(c)).
func Materialize(v *View, doc *Document) *Relation { return view.Materialize(v, doc) }

// Execute runs a rewriting plan against materialized views.
func Execute(p *Plan, st *Store) (*Result, error) { return algebra.Execute(p, st) }

// ExecOptions tunes plan execution (join strategy, worker count).
type ExecOptions = algebra.Options

// ExecuteWith runs a rewriting plan with explicit execution options.
func ExecuteWith(p *Plan, st *Store, opts ExecOptions) (*Result, error) {
	return algebra.ExecuteWith(p, st, opts)
}

// CostStats bundles the statistics the cost model prices plans with: the
// summary's per-node cardinalities plus per-view extent sizes.
type CostStats = cost.Stats

// Cost is a plan's estimated execution cost and output cardinality.
type Cost = cost.Cost

// CostEstimator estimates plan costs against one statistics snapshot.
type CostEstimator = cost.Estimator

// CostFromSummary builds cost statistics from a summary alone; scan sizes
// are estimated from its cardinalities (uniform without statistics).
func CostFromSummary(s *Summary) *CostStats { return cost.FromSummary(s) }

// CostFromCatalog builds cost statistics from a store catalog and its
// parsed summary; cataloged scans are priced at actual row/byte counts.
func CostFromCatalog(cat *Catalog, s *Summary) *CostStats { return cost.FromCatalog(cat, s) }

// NewCostEstimator returns an estimator over the statistics.
func NewCostEstimator(st *CostStats) *CostEstimator { return cost.NewEstimator(st) }

// CostFunc estimates a plan's execution cost; lower is cheaper.
type CostFunc = core.CostFunc

// ChooseBest picks the cheapest rewriting under the cost function,
// deterministically (ties break on plan text, not discovery order). Use
// est.PlanCost as the cost function.
func ChooseBest(res *RewriteResult, costOf CostFunc) (*Plan, float64, int) {
	return core.ChooseBest(res, costOf)
}

// SubsumeCache memoizes summary-implication decisions; share one across
// containment/rewriting calls over the same summary.
type SubsumeCache = core.SubsumeCache

// NewSubsumeCache creates a bounded summary-implication cache
// (capacity <= 0 uses the default).
func NewSubsumeCache(capacity int) *SubsumeCache { return core.NewSubsumeCache(capacity) }

// EvalPattern evaluates a pattern (e.g. a query) directly on a document.
func EvalPattern(p *Pattern, doc *Document) *Relation { return p.Eval(doc) }

// Catalog is the manifest of a persistent view store directory: summary,
// summary hash, and one entry (pattern, schema, row count, byte size,
// segment file) per stored view.
type Catalog = store.Catalog

// BuildStore materializes the views over the document once and persists
// their extents as columnar segment files plus a catalog manifest in dir.
// Later runs serve them with OpenStore without touching the document.
func BuildStore(dir string, doc *Document, views []*View) (*Catalog, error) {
	return view.BuildStore(dir, doc, views)
}

// OpenStore loads view extents from a store directory built by BuildStore.
// The returned store carries no document and is safe for concurrent use.
func OpenStore(dir string, views []*View) (*Store, error) { return view.OpenStore(dir, views) }

// OpenCatalog reads a store directory's manifest (for the recorded summary
// and the stored view definitions) without loading any extent.
func OpenCatalog(dir string) (*Catalog, error) { return store.OpenCatalog(dir) }

// ServeConfig tunes a query Server.
type ServeConfig = serve.Config

// Server is the xvserve query daemon: it answers tree-pattern and XQuery
// queries over a persistent view store, with a shared containment cache
// and an LRU plan cache. Mount Handler on any HTTP server.
type Server = serve.Server

// NewServer opens a store directory and builds a ready-to-serve query
// daemon.
func NewServer(cfg ServeConfig) (*Server, error) { return serve.New(cfg) }

// NewServerHandler is a convenience returning just the daemon's routes
// (/query, /update, /healthz, /stats).
func NewServerHandler(cfg ServeConfig) (http.Handler, error) {
	s, err := serve.New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Handler(), nil
}

// Update is one typed document update (insert-subtree, delete-subtree,
// rename, settext) of the maintenance log.
type Update = xmltree.Update

// Update kinds.
const (
	UpdateInsert   = xmltree.UpdateInsert
	UpdateDelete   = xmltree.UpdateDelete
	UpdateRename   = xmltree.UpdateRename
	UpdateSetValue = xmltree.UpdateSetValue
)

// MaintainBatch reports one applied update batch: per-view tuple deltas,
// the views proven unaffected, and the rebuilt summary.
type MaintainBatch = maintain.Batch

// ParseUpdates decodes a JSON update batch (the /update wire format).
func ParseUpdates(data []byte) ([]Update, error) { return maintain.ParseUpdates(data) }

// StoreUpdateResult reports a persisted update batch (new epoch, per-view
// delta sizes, skipped-view count).
type StoreUpdateResult = view.UpdateResult

// UpdateStore applies an update batch to a store directory: the extents
// are maintained incrementally, the deltas appended as segments, and the
// catalog epoch advanced.
func UpdateStore(dir string, updates []Update) (*StoreUpdateResult, error) {
	return view.UpdateStore(dir, updates)
}

// CompactResult reports what a store compaction folded and reclaimed.
type CompactResult = view.CompactResult

// CompactStore folds every delta chain of a store directory into fresh
// base segments, removing the superseded files once the new catalog is
// durable. Query answers are unchanged.
func CompactStore(dir string) (*CompactResult, error) { return view.CompactStore(dir) }
