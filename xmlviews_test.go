package xmlviews_test

import (
	"strings"
	"testing"

	"xmlviews"
)

// TestFacadePipeline exercises the public API end to end: parse, summarize,
// translate an XQuery, rewrite, materialize and execute.
func TestFacadePipeline(t *testing.T) {
	doc, err := xmlviews.ParseXMLString(
		`<site><regions><asia>` +
			`<item><name>pen</name><price>30</price></item>` +
			`<item><name>ink</name><price>8</price></item>` +
			`</asia></regions></site>`)
	if err != nil {
		t.Fatal(err)
	}
	s := xmlviews.BuildSummary(doc)
	if s.Size() != 6 {
		t.Fatalf("summary size = %d", s.Size())
	}

	v := xmlviews.NewView("items", xmlviews.MustParsePattern(`site(//item[id](/name[v] /price[v]))`))
	q := xmlviews.MustParsePattern(`site(//item[id](/name[v] /price{v>20}))`)

	ok, err := xmlviews.Satisfiable(q, s)
	if err != nil || !ok {
		t.Fatalf("Satisfiable = %v, %v", ok, err)
	}
	model, err := xmlviews.CanonicalModel(q, s)
	if err != nil || len(model) == 0 {
		t.Fatalf("CanonicalModel = %d, %v", len(model), err)
	}

	res, err := xmlviews.Rewrite(q, []*xmlviews.View{v}, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rewritings) == 0 {
		t.Fatal("no rewriting")
	}
	store := xmlviews.NewStore(doc, []*xmlviews.View{v})
	out, err := xmlviews.Execute(res.Rewritings[0], store)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rel.Len() != 1 || !strings.Contains(out.Rel.String(), "pen") {
		t.Fatalf("plan result wrong:\n%s", out.Rel)
	}

	direct := xmlviews.EvalPattern(q, doc)
	if direct.Len() != 1 {
		t.Fatalf("direct evaluation = %d rows", direct.Len())
	}
}

func TestFacadeContainment(t *testing.T) {
	s, err := xmlviews.ParseSummary("a(!b(c) d)")
	if err != nil {
		t.Fatal(err)
	}
	p, _ := xmlviews.ParsePattern(`a(/b[id])`)
	q, _ := xmlviews.ParsePattern(`a(//b[id])`)
	ok, err := xmlviews.Contained(p, q, s)
	if err != nil || !ok {
		t.Fatalf("Contained = %v, %v", ok, err)
	}
	eq, err := xmlviews.Equivalent(p, q, s)
	if err != nil || !eq {
		t.Fatalf("Equivalent = %v, %v (b occurs only as a child)", eq, err)
	}
	u1, _ := xmlviews.ParsePattern(`a(/b[id]{v<5})`)
	u2, _ := xmlviews.ParsePattern(`a(/b[id]{v>=5})`)
	all, _ := xmlviews.ParsePattern(`a(/b[id])`)
	ok, err = xmlviews.ContainedInUnion(all, []*xmlviews.Pattern{u1, u2}, s)
	if err != nil || !ok {
		t.Fatalf("union containment = %v, %v", ok, err)
	}
}

func TestFacadeXQuery(t *testing.T) {
	q, err := xmlviews.TranslateXQuery(
		`for $x in doc("d")//item[//mail] return <r>{$x/name/text()}</r>`, "site")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.String(), "item[id]") || !strings.Contains(q.String(), "mail") {
		t.Fatalf("translation = %s", q)
	}
}

func TestFacadeMaterialize(t *testing.T) {
	doc, _ := xmlviews.ParseXMLString(`<a><b>1</b><b>2</b></a>`)
	v := xmlviews.NewView("vb", xmlviews.MustParsePattern(`a(n?/b[v])`))
	rel := xmlviews.Materialize(v, doc)
	if rel.Len() != 1 {
		t.Fatalf("nested materialization = %d rows", rel.Len())
	}
	if rel.Rows[0][0].Table.Len() != 2 {
		t.Fatalf("nested table = %d rows", rel.Rows[0][0].Table.Len())
	}
}
